//! Durable, checksummed on-disk snapshots of a [`ProbGraph`].
//!
//! A snapshot is the flat sketch arrays a [`crate::SketchStore`] already
//! holds, written verbatim behind a fixed self-describing header — saving
//! is `O(bytes)` with no re-encoding, and loading a validated snapshot is
//! allocation + checksum, orders of magnitude cheaper than rebuilding the
//! sketches from the edge list (the `snapshot` section of the bench suite
//! measures the ratio). The format is deliberately simple enough to serve
//! as the wire format for multi-process sketch exchange later.
//!
//! ## Format (version 3, all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  89 50 47 53 4E 41 50 0A  ("\x89PGSNAP\n")
//!      8     4  format version (= 3)
//!     12     4  representation tag (0 Bloom, 1 CountingBloom, 2 KHash,
//!                                   3 OneHash, 4 Kmv, 5 Hll;
//!                                   bit 3 set = degree-stratified store)
//!     16     4  Bloom estimator tag (0 And, 1 Limit, 2 Or)
//!     20     4  section count
//!     24     8  master hash seed
//!     32     8  number of sets
//!     40     8  param A (bits_per_set | k | precision)
//!     48     8  param B (b | strided flag | 0)
//!     56     8  header checksum: xxh64 over bytes 0..56
//!     64     —  section table: per section 24 bytes
//!               (kind u32, reserved u32 = 0, payload len u64,
//!                payload checksum u64), then 8 bytes table checksum
//!      …     —  section payloads, concatenated, no padding
//! ```
//!
//! A **stratified** store (representation tag with bit 3 set) carries the
//! base representation's sections bracketed by two extras: a leading
//! [`SectionKind::StratumParams`] table — per stratum, the same
//! `(param A, param B)` pair the header holds, 16 bytes each — and a
//! trailing [`SectionKind::StratumAssign`] byte array mapping each set to
//! its stratum. The header's own params always equal stratum 0 (the
//! widest), so a v3 reader that only understands uniform stores still
//! sees sane header parameters. Every per-set array length is re-derived
//! from the stratum table + assignment at load and must match exactly.
//!
//! Version 3 orders each representation's sections coarsest-element-first
//! (`u64`/`f64` arrays before `u32` arrays before bytes). The payload base
//! (`64 + 24·sections + 8`) is a multiple of 8, so with that ordering
//! every section is naturally aligned for its element type whenever the
//! whole buffer is 8-aligned — which is what lets
//! [`ProbGraph::from_snapshot_bytes_borrowed`] and [`load_snapshot_mmap`]
//! serve validated sketch arrays **in place**, zero-copy, instead of
//! decoding them into fresh allocations. (Unaligned buffers and
//! big-endian hosts transparently fall back to copying.)
//!
//! Every region is covered by exactly one checksum (header, table, each
//! payload), so [`ProbGraph::from_snapshot_bytes`] can attribute any
//! corruption to the region it hit and return the matching typed
//! [`SnapshotError`] — it never panics and never constructs a store from
//! unvalidated bytes. Beyond checksums, the loader re-derives every
//! redundant structure (Bloom popcount caches, the counting-Bloom read
//! view, bottom-k layout and hash integrity, KMV order/range, HLL rank
//! bounds) and rejects files whose sections are individually intact but
//! mutually inconsistent.
//!
//! [`ProbGraph::save_snapshot`] is atomic: bytes go to a temp file in the
//! destination directory, are fsynced, and rename into place, so a crash
//! mid-save leaves either the old snapshot or the new one — never a torn
//! file. [`inspect`] gives a best-effort per-section damage report for
//! files that fail to load.
//!
//! ## Version policy
//!
//! The version field gates the whole layout: readers reject any version
//! they do not know ([`SnapshotError::UnsupportedVersion`]) rather than
//! guessing. Layout changes bump the version; the magic never changes.

use std::borrow::Cow;
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;

use crate::pg::{BfEstimator, ProbGraph, ProbGraphIn, SketchStoreIn};
use pg_hash::{xxh64, HashFamily};
use pg_sketch::{
    BloomCollectionIn, BottomKCollectionIn, CountingBloomCollectionIn, HyperLogLogCollectionIn,
    KmvCollectionIn, KmvSketchIn, MinHashCollectionIn, SketchParams, StratifiedParams,
    MAX_BLOOM_HASHES, MAX_STRATA,
};

/// The eight magic bytes opening every snapshot. PNG-style framing: the
/// high bit catches 7-bit transport, the trailing `\n` catches newline
/// translation.
pub const SNAPSHOT_MAGIC: [u8; 8] = [0x89, b'P', b'G', b'S', b'N', b'A', b'P', 0x0A];

/// The format version this build writes and the only one it reads.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Representation-tag bit marking a degree-stratified store; the low bits
/// keep the base representation's tag.
pub const REP_STRATIFIED: u32 = 8;

/// Fixed header size in bytes (including its trailing checksum).
pub const HEADER_LEN: usize = 64;
/// Size of one section-table entry in bytes.
pub const ENTRY_LEN: usize = 24;
/// Seed for every xxh64 checksum in the file (header, table, payloads).
/// Public so external recovery / fuzzing tooling can recompute them.
pub const CHECKSUM_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
/// Sanity bound on the section count honored by [`inspect`] (loads use
/// the exact per-representation layout instead).
const MAX_SECTIONS: u32 = 16;

/// Identifies what a snapshot section stores. Tags are part of the wire
/// format and never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionKind {
    /// Exact per-set sizes (`u32` each) — every representation.
    Sizes = 1,
    /// Flat Bloom filter words (`u64` each).
    BloomWords = 2,
    /// Per-filter popcount cache (`u32` each).
    BloomOnes = 3,
    /// Packed 4-bit counting-Bloom counters (`u64` words).
    CbfCounters = 4,
    /// The derived counting-Bloom read view (`u64` words).
    CbfView = 5,
    /// Flat k-hash MinHash signatures (`u32` each).
    MinHashSigs = 6,
    /// Bottom-k sample elements (`u32` each).
    BkElems = 7,
    /// Bottom-k sample hashes, same order as the elements (`u32` each).
    BkHashes = 8,
    /// Bottom-k per-set region offsets (`n + 1` × `u32`).
    BkOffsets = 9,
    /// Bottom-k live sample lengths (`u32` each).
    BkLens = 10,
    /// Bottom-k recorded exact set sizes (`u32` each).
    BkSetSizes = 11,
    /// KMV per-sketch hash counts (`u32` each).
    KmvLens = 12,
    /// KMV per-sketch recorded exact set sizes (`u64` each).
    KmvSetSizes = 13,
    /// KMV unit-interval hashes, concatenated per sketch (`f64` each).
    KmvHashes = 14,
    /// HyperLogLog registers (`2^precision` bytes per set).
    HllRegisters = 15,
    /// Per-stratum `(param A, param B)` pairs (2 × `u64` per stratum) —
    /// stratified stores only, always the first section.
    StratumParams = 16,
    /// Per-set stratum index (one byte per set) — stratified stores only,
    /// always the last section.
    StratumAssign = 17,
}

impl SectionKind {
    /// Decodes a wire tag; `None` for tags this build does not know.
    pub fn from_tag(tag: u32) -> Option<SectionKind> {
        use SectionKind::*;
        Some(match tag {
            1 => Sizes,
            2 => BloomWords,
            3 => BloomOnes,
            4 => CbfCounters,
            5 => CbfView,
            6 => MinHashSigs,
            7 => BkElems,
            8 => BkHashes,
            9 => BkOffsets,
            10 => BkLens,
            11 => BkSetSizes,
            12 => KmvLens,
            13 => KmvSetSizes,
            14 => KmvHashes,
            15 => HllRegisters,
            16 => StratumParams,
            17 => StratumAssign,
            _ => return None,
        })
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Everything that can be wrong with a snapshot, attributed to the region
/// the damage hit. Loading never panics: every malformed, truncated, or
/// bit-flipped input maps to one of these.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// Fewer bytes than the fixed header + section table need.
    TooShort {
        /// Minimum byte count the structure requires.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The magic bytes are wrong — not a snapshot (or mangled transport).
    BadMagic,
    /// A format version this build does not read.
    UnsupportedVersion {
        /// The version the file claims.
        found: u32,
    },
    /// The header checksum does not match — header bytes were corrupted.
    HeaderCorrupt,
    /// The representation tag is not one of the six known stores.
    BadRepresentation {
        /// The unknown tag.
        tag: u32,
    },
    /// The Bloom estimator tag is not And/Limit/Or.
    BadEstimator {
        /// The unknown tag.
        tag: u32,
    },
    /// Header parameters are impossible for the claimed representation
    /// (zero `k`, non-word Bloom width, out-of-range precision, …).
    BadParams {
        /// What was wrong.
        detail: String,
    },
    /// The header's section count disagrees with the representation's
    /// fixed layout.
    SectionCount {
        /// Sections the representation's layout defines.
        expected: usize,
        /// Sections the header declares.
        found: usize,
    },
    /// The section table checksum does not match — table bytes were
    /// corrupted.
    SectionTableCorrupt,
    /// A table entry names a different section than the layout expects
    /// at that position.
    WrongSection {
        /// Zero-based table position.
        index: usize,
        /// The section the layout expects there.
        expected: SectionKind,
        /// The tag actually found.
        found_tag: u32,
    },
    /// The file ends before the declared payloads do.
    Truncated {
        /// Total bytes the header + table promise.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The file continues past the declared payloads.
    TrailingBytes {
        /// Total bytes the header + table promise.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A payload checksum does not match — that section was corrupted.
    ChecksumMismatch {
        /// The damaged section.
        section: SectionKind,
    },
    /// A section's declared length is impossible for the header's set
    /// count and parameters.
    SectionLength {
        /// The inconsistent section.
        section: SectionKind,
        /// Bytes the parameters require.
        expected_bytes: u64,
        /// Bytes the table declares.
        got_bytes: u64,
    },
    /// Sections are individually intact but mutually inconsistent — a
    /// derived invariant (popcount cache, counter/view agreement, sample
    /// ordering, hash integrity, register range, …) does not hold.
    InvariantViolation {
        /// The section the violated invariant lives in.
        section: SectionKind,
        /// Which invariant failed.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use SnapshotError::*;
        match self {
            Io(e) => write!(f, "snapshot I/O failed: {e}"),
            TooShort { needed, got } => {
                write!(f, "snapshot too short: need {needed} bytes, got {got}")
            }
            BadMagic => write!(f, "not a ProbGraph snapshot (bad magic)"),
            UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {SNAPSHOT_VERSION})"
            ),
            HeaderCorrupt => write!(f, "snapshot header failed its checksum"),
            BadRepresentation { tag } => write!(f, "unknown representation tag {tag}"),
            BadEstimator { tag } => write!(f, "unknown Bloom estimator tag {tag}"),
            BadParams { detail } => write!(f, "invalid sketch parameters: {detail}"),
            SectionCount { expected, found } => write!(
                f,
                "section count {found} does not match the representation's layout ({expected})"
            ),
            SectionTableCorrupt => write!(f, "snapshot section table failed its checksum"),
            WrongSection {
                index,
                expected,
                found_tag,
            } => write!(
                f,
                "section {index} should be {expected} but the table says tag {found_tag}"
            ),
            Truncated { expected, got } => {
                write!(f, "snapshot truncated: {expected} bytes declared, {got} present")
            }
            TrailingBytes { expected, got } => write!(
                f,
                "snapshot has trailing bytes: {expected} declared, {got} present"
            ),
            ChecksumMismatch { section } => {
                write!(f, "section {section} failed its checksum")
            }
            SectionLength {
                section,
                expected_bytes,
                got_bytes,
            } => write!(
                f,
                "section {section} should be {expected_bytes} bytes for these parameters, table declares {got_bytes}"
            ),
            InvariantViolation { section, detail } => {
                write!(f, "section {section} violates a derived invariant: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Little-endian (de)serialization helpers
// ---------------------------------------------------------------------------

fn le_u32s(v: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn le_u64s(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn le_f64s(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn decode_u32s(b: &[u8]) -> Vec<u32> {
    debug_assert_eq!(b.len() % 4, 0);
    b.chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn decode_u64s(b: &[u8]) -> Vec<u64> {
    debug_assert_eq!(b.len() % 8, 0);
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

fn decode_f64s(b: &[u8]) -> Vec<f64> {
    debug_assert_eq!(b.len() % 8, 0);
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

/// Reads a `u32` at `off`; callers bounds-check before calling.
fn u32le(b: &[u8], off: usize) -> u32 {
    let mut x = [0u8; 4];
    x.copy_from_slice(&b[off..off + 4]);
    u32::from_le_bytes(x)
}

/// Reads a `u64` at `off`; callers bounds-check before calling.
fn u64le(b: &[u8], off: usize) -> u64 {
    let mut x = [0u8; 8];
    x.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(x)
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

/// The fixed section sequence each representation writes and expects —
/// coarsest element type first (see the module docs' alignment note), so
/// every section is naturally aligned when the buffer base is.
fn layout_for(rep_tag: u32) -> Result<&'static [SectionKind], SnapshotError> {
    use SectionKind::*;
    Ok(match rep_tag {
        0 => &[BloomWords, Sizes, BloomOnes],
        1 => &[CbfCounters, CbfView, Sizes],
        2 => &[Sizes, MinHashSigs],
        3 => &[Sizes, BkElems, BkHashes, BkOffsets, BkLens, BkSetSizes],
        4 => &[KmvHashes, KmvSetSizes, KmvLens, Sizes],
        5 => &[Sizes, HllRegisters],
        // Stratified stores bracket the base layout with the stratum
        // parameter table (u64 pairs, so it leads for alignment) and the
        // per-set assignment bytes (which trail for the same reason).
        8 => &[StratumParams, BloomWords, Sizes, BloomOnes, StratumAssign],
        9 => &[StratumParams, CbfCounters, CbfView, Sizes, StratumAssign],
        10 => &[StratumParams, Sizes, MinHashSigs, StratumAssign],
        11 => &[
            StratumParams,
            Sizes,
            BkElems,
            BkHashes,
            BkOffsets,
            BkLens,
            BkSetSizes,
            StratumAssign,
        ],
        12 => &[
            StratumParams,
            KmvHashes,
            KmvSetSizes,
            KmvLens,
            Sizes,
            StratumAssign,
        ],
        13 => &[StratumParams, Sizes, HllRegisters, StratumAssign],
        tag => return Err(SnapshotError::BadRepresentation { tag }),
    })
}

/// The wire `(param A, param B)` pair of one stratum's parameters, with
/// the same per-representation meaning as the header's fields. (The
/// bottom-k strided flag is a property of the whole store, not a stratum,
/// so `OneHash` strata carry 0 there.)
fn stratum_pair(p: &SketchParams) -> (u64, u64) {
    match *p {
        SketchParams::Bloom { bits_per_set, b } => (bits_per_set as u64, b as u64),
        SketchParams::CountingBloom { bits_per_set, b } => (bits_per_set as u64, b as u64),
        SketchParams::KHash { k } => (k as u64, 0),
        SketchParams::OneHash { k } => (k as u64, 0),
        SketchParams::Kmv { k } => (k as u64, 0),
        SketchParams::Hll { precision } => (precision as u64, 0),
    }
}

/// Flattens a ProbGraph into `(rep tag, param A, param B, sections)` —
/// the payloads are the collections' own flat arrays, byte for byte, in
/// the coarsest-first order `layout_for` declares.
fn sections_of(pg: &ProbGraphIn<'_>) -> (u32, u64, u64, Vec<(SectionKind, Vec<u8>)>) {
    use SectionKind::*;
    let sizes = (Sizes, le_u32s(pg.sizes()));
    let (rep_tag, param_a, param_b, mut sections) = match (pg.store(), pg.params()) {
        (SketchStoreIn::Bloom(c), SketchParams::Bloom { bits_per_set, b }) => (
            0,
            bits_per_set as u64,
            b as u64,
            vec![
                (BloomWords, le_u64s(c.raw_words())),
                sizes,
                (BloomOnes, le_u32s(c.raw_ones())),
            ],
        ),
        (SketchStoreIn::CountingBloom(c), SketchParams::CountingBloom { bits_per_set, b }) => (
            1,
            bits_per_set as u64,
            b as u64,
            vec![
                (CbfCounters, le_u64s(c.raw_counters())),
                (CbfView, le_u64s(c.read_view().raw_words())),
                sizes,
            ],
        ),
        (SketchStoreIn::KHash(c), SketchParams::KHash { k }) => (
            2,
            k as u64,
            0,
            vec![sizes, (MinHashSigs, le_u32s(c.raw_sigs()))],
        ),
        (SketchStoreIn::OneHash(c), SketchParams::OneHash { k }) => (
            3,
            k as u64,
            c.is_strided() as u64,
            vec![
                sizes,
                (BkElems, le_u32s(c.raw_elems())),
                (BkHashes, le_u32s(c.raw_hashes())),
                (BkOffsets, le_u32s(c.raw_offsets())),
                (BkLens, le_u32s(c.raw_lens())),
                (BkSetSizes, le_u32s(c.raw_set_sizes())),
            ],
        ),
        (SketchStoreIn::Kmv(c), SketchParams::Kmv { k }) => {
            let n = c.len();
            let mut lens = Vec::with_capacity(n);
            let mut set_sizes = Vec::with_capacity(n);
            let mut hashes = Vec::new();
            for i in 0..n {
                let s = c.sketch(i);
                lens.push(s.hashes().len() as u32);
                set_sizes.push(s.set_size() as u64);
                hashes.extend_from_slice(s.hashes());
            }
            (
                4,
                k as u64,
                0,
                vec![
                    (KmvHashes, le_f64s(&hashes)),
                    (KmvSetSizes, le_u64s(&set_sizes)),
                    (KmvLens, le_u32s(&lens)),
                    sizes,
                ],
            )
        }
        (SketchStoreIn::Hll(c), SketchParams::Hll { precision }) => (
            5,
            precision as u64,
            0,
            vec![sizes, (HllRegisters, c.raw_registers().to_vec())],
        ),
        // `build_over` resolves store and params from the same
        // representation; no constructor can mix them.
        _ => unreachable!("SketchStore and SketchParams variants disagree"),
    };
    if let Some(sp) = pg.stratified_params() {
        // The header's params are stratum 0 by construction; the stratum
        // table restates them so a reader validates the two against each
        // other.
        debug_assert_eq!(sp.strata()[0], pg.params());
        let mut table = Vec::with_capacity(sp.n_strata() * 16);
        for p in sp.strata() {
            let (a, b) = stratum_pair(p);
            table.extend_from_slice(&a.to_le_bytes());
            table.extend_from_slice(&b.to_le_bytes());
        }
        sections.insert(0, (StratumParams, table));
        sections.push((StratumAssign, sp.assign().to_vec()));
        return (rep_tag | REP_STRATIFIED, param_a, param_b, sections);
    }
    (rep_tag, param_a, param_b, sections)
}

fn encode(pg: &ProbGraphIn<'_>) -> Vec<u8> {
    let (rep_tag, param_a, param_b, sections) = sections_of(pg);
    let est_tag: u32 = match pg.bf_estimator() {
        BfEstimator::And => 0,
        BfEstimator::Limit => 1,
        BfEstimator::Or => 2,
    };
    let payload_total: usize = sections.iter().map(|(_, p)| p.len()).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + sections.len() * ENTRY_LEN + 8 + payload_total);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&rep_tag.to_le_bytes());
    out.extend_from_slice(&est_tag.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&pg.seed().to_le_bytes());
    out.extend_from_slice(&(pg.len() as u64).to_le_bytes());
    out.extend_from_slice(&param_a.to_le_bytes());
    out.extend_from_slice(&param_b.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN - 8);
    let header_sum = xxh64(&out, CHECKSUM_SEED);
    out.extend_from_slice(&header_sum.to_le_bytes());
    let table_start = out.len();
    for (kind, payload) in &sections {
        out.extend_from_slice(&(*kind as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&xxh64(payload, CHECKSUM_SEED).to_le_bytes());
    }
    let table_sum = xxh64(&out[table_start..], CHECKSUM_SEED);
    out.extend_from_slice(&table_sum.to_le_bytes());
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    out
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

struct Header {
    rep_tag: u32,
    est_tag: u32,
    section_count: u32,
    seed: u64,
    n_sets: u64,
    param_a: u64,
    param_b: u64,
}

/// Validates magic, version, and the header checksum, in that order — a
/// flip in the magic reports [`SnapshotError::BadMagic`], in the version
/// [`SnapshotError::UnsupportedVersion`], anywhere else in the header
/// [`SnapshotError::HeaderCorrupt`].
fn parse_header(bytes: &[u8]) -> Result<Header, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::TooShort {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32le(bytes, 8);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    if xxh64(&bytes[..HEADER_LEN - 8], CHECKSUM_SEED) != u64le(bytes, HEADER_LEN - 8) {
        return Err(SnapshotError::HeaderCorrupt);
    }
    Ok(Header {
        rep_tag: u32le(bytes, 12),
        est_tag: u32le(bytes, 16),
        section_count: u32le(bytes, 20),
        seed: u64le(bytes, 24),
        n_sets: u64le(bytes, 32),
        param_a: u64le(bytes, 40),
        param_b: u64le(bytes, 48),
    })
}

fn bad_params(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::BadParams {
        detail: detail.into(),
    }
}

fn invariant(section: SectionKind, detail: impl Into<String>) -> SnapshotError {
    SnapshotError::InvariantViolation {
        section,
        detail: detail.into(),
    }
}

/// `count × size` with overflow mapped to [`SnapshotError::BadParams`]
/// (only absurd headers overflow 64-bit byte counts).
fn expected_bytes(count: u64, size: u64) -> Result<u64, SnapshotError> {
    count
        .checked_mul(size)
        .ok_or_else(|| bad_params("section size overflows"))
}

/// Enforces a section's declared length against what the header's
/// parameters require.
fn check_len(section: SectionKind, got: u64, expected: u64) -> Result<(), SnapshotError> {
    if got != expected {
        return Err(SnapshotError::SectionLength {
            section,
            expected_bytes: expected,
            got_bytes: got,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Zero-copy payload views
// ---------------------------------------------------------------------------
//
// On little-endian hosts a validated payload IS the flat sketch array —
// same element order, same byte order — so when the slice happens to be
// correctly aligned for its element type we hand the collection a
// `Cow::Borrowed` view of the wire bytes instead of decoding a copy. The
// v2 section ordering makes that the common case for any 8-aligned
// buffer (a mapped file or [`AlignedBytes`]); everything else falls back
// to the copying decoder, bit-for-bit identical.

fn cow_u32s(bytes: &[u8]) -> Cow<'_, [u32]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: any initialized bytes are a valid [u32]; `align_to`
        // only yields an aligned, in-bounds middle slice.
        let (head, mid, tail) = unsafe { bytes.align_to::<u32>() };
        if head.is_empty() && tail.is_empty() {
            return Cow::Borrowed(mid);
        }
    }
    Cow::Owned(decode_u32s(bytes))
}

fn cow_u64s(bytes: &[u8]) -> Cow<'_, [u64]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: as in `cow_u32s`.
        let (head, mid, tail) = unsafe { bytes.align_to::<u64>() };
        if head.is_empty() && tail.is_empty() {
            return Cow::Borrowed(mid);
        }
    }
    Cow::Owned(decode_u64s(bytes))
}

fn cow_f64s(bytes: &[u8]) -> Cow<'_, [f64]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: every bit pattern is a valid f64 (the loader's range
        // checks reject NaN payloads afterwards, exactly as when copying).
        let (head, mid, tail) = unsafe { bytes.align_to::<f64>() };
        if head.is_empty() && tail.is_empty() {
            return Cow::Borrowed(mid);
        }
    }
    Cow::Owned(decode_f64s(bytes))
}

fn decode_in(bytes: &[u8]) -> Result<ProbGraphIn<'_>, SnapshotError> {
    let h = parse_header(bytes)?;
    let layout = layout_for(h.rep_tag)?;
    let est = match h.est_tag {
        0 => BfEstimator::And,
        1 => BfEstimator::Limit,
        2 => BfEstimator::Or,
        tag => return Err(SnapshotError::BadEstimator { tag }),
    };
    if h.section_count as usize != layout.len() {
        return Err(SnapshotError::SectionCount {
            expected: layout.len(),
            found: h.section_count as usize,
        });
    }
    let table_end = HEADER_LEN + layout.len() * ENTRY_LEN + 8;
    if bytes.len() < table_end {
        return Err(SnapshotError::TooShort {
            needed: table_end,
            got: bytes.len(),
        });
    }
    if xxh64(&bytes[HEADER_LEN..table_end - 8], CHECKSUM_SEED) != u64le(bytes, table_end - 8) {
        return Err(SnapshotError::SectionTableCorrupt);
    }
    let mut entries: Vec<(SectionKind, u64, u64)> = Vec::with_capacity(layout.len());
    for (i, kind) in layout.iter().enumerate() {
        let off = HEADER_LEN + i * ENTRY_LEN;
        let tag = u32le(bytes, off);
        if tag != *kind as u32 {
            return Err(SnapshotError::WrongSection {
                index: i,
                expected: *kind,
                found_tag: tag,
            });
        }
        entries.push((*kind, u64le(bytes, off + 8), u64le(bytes, off + 16)));
    }
    let mut total = table_end as u64;
    for &(_, len, _) in &entries {
        total = total
            .checked_add(len)
            .ok_or_else(|| bad_params("section lengths overflow"))?;
    }
    let got = bytes.len() as u64;
    if got < total {
        return Err(SnapshotError::Truncated {
            expected: total as usize,
            got: bytes.len(),
        });
    }
    if got > total {
        return Err(SnapshotError::TrailingBytes {
            expected: total as usize,
            got: bytes.len(),
        });
    }
    // All declared lengths fit the file, so payload slicing cannot go out
    // of bounds. Verify each section's checksum before decoding anything.
    let mut payloads: Vec<&[u8]> = Vec::with_capacity(entries.len());
    let mut off = table_end;
    for &(kind, len, sum) in &entries {
        let payload = &bytes[off..off + len as usize];
        if xxh64(payload, CHECKSUM_SEED) != sum {
            return Err(SnapshotError::ChecksumMismatch { section: kind });
        }
        payloads.push(payload);
        off += len as usize;
    }
    build_store(&h, est, &entries, &payloads)
}

/// The decoded stratified bracket sections: per-stratum wire parameter
/// pairs plus the per-set assignment, borrowed from the payload.
struct StratumTable<'a> {
    pairs: Vec<(u64, u64)>,
    assign: &'a [u8],
}

impl StratumTable<'_> {
    fn n_strata(&self) -> usize {
        self.pairs.len()
    }

    /// Sets per stratum.
    fn counts(&self) -> Vec<u64> {
        let mut c = vec![0u64; self.pairs.len()];
        for &a in self.assign {
            c[a as usize] += 1;
        }
        c
    }
}

/// Validates and decodes the stratified bracket sections (the first and
/// last table entries): table shape, stratum count, assignment range, and
/// header agreement (the header's params must restate stratum 0's).
fn parse_stratum_table<'a>(
    h: &Header,
    entries: &[(SectionKind, u64, u64)],
    payloads: &[&'a [u8]],
) -> Result<StratumTable<'a>, SnapshotError> {
    use SectionKind::*;
    let sp_bytes = entries[0].1;
    if sp_bytes == 0 || !sp_bytes.is_multiple_of(16) {
        return Err(bad_params(format!(
            "stratum table length {sp_bytes} is not a positive multiple of 16"
        )));
    }
    let n_strata = (sp_bytes / 16) as usize;
    if !(2..=MAX_STRATA).contains(&n_strata) {
        return Err(bad_params(format!(
            "stratified store declares {n_strata} strata, outside 2..={MAX_STRATA} \
             (a one-stratum store must use the uniform representation tag)"
        )));
    }
    let pairs: Vec<(u64, u64)> = payloads[0]
        .chunks_exact(16)
        .map(|c| (u64le(c, 0), u64le(c, 8)))
        .collect();
    let a_at = entries.len() - 1;
    check_len(StratumAssign, entries[a_at].1, h.n_sets)?;
    let assign = payloads[a_at];
    if let Some(i) = assign.iter().position(|&a| a as usize >= n_strata) {
        return Err(invariant(
            StratumAssign,
            format!(
                "set {i} is assigned to stratum {} past the {n_strata}-stratum table",
                assign[i]
            ),
        ));
    }
    if pairs[0].0 != h.param_a {
        return Err(bad_params(format!(
            "stratum 0 param A {} disagrees with the header's {}",
            pairs[0].0, h.param_a
        )));
    }
    Ok(StratumTable { pairs, assign })
}

/// Σ of per-stratum byte counts with overflow mapped to `BadParams`.
fn checked_total(
    parts: impl Iterator<Item = Result<u64, SnapshotError>>,
) -> Result<u64, SnapshotError> {
    let mut total = 0u64;
    for p in parts {
        total = total
            .checked_add(p?)
            .ok_or_else(|| bad_params("section size overflows"))?;
    }
    Ok(total)
}

/// Mirrors the stratified Bloom geometry preconditions so hostile tables
/// surface as typed errors instead of constructor panics: every width a
/// positive whole-word count, every pair of widths related by a
/// power-of-two factor of at most 64 (the fold kernels' requirement), and
/// one hash count shared by all strata.
fn validate_bloom_strata(pairs: &[(u64, u64)], header_b: u64) -> Result<Vec<u32>, SnapshotError> {
    let mut bits = Vec::with_capacity(pairs.len());
    for (s, &(w, b)) in pairs.iter().enumerate() {
        if w == 0 || w % 64 != 0 {
            return Err(bad_params(format!(
                "stratum {s} Bloom width {w} is not a positive multiple of 64"
            )));
        }
        if b != header_b {
            return Err(bad_params(format!(
                "stratum {s} hash count {b} disagrees with the header's {header_b}"
            )));
        }
        bits.push(
            u32::try_from(w)
                .map_err(|_| bad_params(format!("stratum {s} Bloom width {w} exceeds u32")))?,
        );
    }
    let min_w = *bits.iter().min().expect("≥ 2 strata") as u64;
    for (s, &w) in bits.iter().enumerate() {
        let r = w as u64 / min_w;
        if !(w as u64).is_multiple_of(min_w) || !r.is_power_of_two() || r > 64 {
            return Err(bad_params(format!(
                "stratum {s} width {w} is not a power-of-two multiple (≤ 64×) of the \
                 narrowest stratum's {min_w}"
            )));
        }
    }
    Ok(bits)
}

/// Per-stratum `k`-style parameters: `k ≥ 1`, fits `u32`, param B zero.
fn validate_k_strata(pairs: &[(u64, u64)], what: &str) -> Result<Vec<u32>, SnapshotError> {
    let mut ks = Vec::with_capacity(pairs.len());
    for (s, &(k, b)) in pairs.iter().enumerate() {
        if k == 0 {
            return Err(bad_params(format!("stratum {s} {what} k must be ≥ 1")));
        }
        if b != 0 {
            return Err(bad_params(format!(
                "stratum {s} param B must be 0 for {what}"
            )));
        }
        ks.push(
            u32::try_from(k)
                .map_err(|_| bad_params(format!("stratum {s} {what} k {k} exceeds u32")))?,
        );
    }
    Ok(ks)
}

/// Rebuilds one stratum's [`SketchParams`] from its validated wire pair.
fn stratum_sketch_params(base_tag: u32, a: u64, b: u64) -> SketchParams {
    match base_tag {
        0 => SketchParams::Bloom {
            bits_per_set: a as usize,
            b: b as usize,
        },
        1 => SketchParams::CountingBloom {
            bits_per_set: a as usize,
            b: b as usize,
        },
        2 => SketchParams::KHash { k: a as usize },
        3 => SketchParams::OneHash { k: a as usize },
        4 => SketchParams::Kmv { k: a as usize },
        5 => SketchParams::Hll { precision: a as u8 },
        _ => unreachable!("layout_for rejected unknown base tags"),
    }
}

/// Decodes the checksummed payloads into a live store, re-deriving every
/// redundant structure and rejecting any cross-section inconsistency.
/// The store borrows any payload it can serve in place (see the zero-copy
/// helpers above); the caller decides whether to keep the borrow or
/// `into_owned()` it.
fn build_store<'a>(
    h: &Header,
    est: BfEstimator,
    entries: &[(SectionKind, u64, u64)],
    payloads: &[&'a [u8]],
) -> Result<ProbGraphIn<'a>, SnapshotError> {
    use SectionKind::*;
    let n = h.n_sets;
    let n_us = usize::try_from(n).map_err(|_| bad_params("set count exceeds address space"))?;
    // `decode_in` already matched every entry against the layout, so each
    // kind occurs exactly once.
    let idx = |kind: SectionKind| {
        entries
            .iter()
            .position(|&(k, _, _)| k == kind)
            .expect("entry kinds match the representation layout")
    };
    let sizes_at = idx(Sizes);
    check_len(Sizes, entries[sizes_at].1, expected_bytes(n, 4)?)?;
    let sizes = cow_u32s(payloads[sizes_at]);
    let base_tag = h.rep_tag & !REP_STRATIFIED;
    let strat = if h.rep_tag & REP_STRATIFIED != 0 {
        Some(parse_stratum_table(h, entries, payloads)?)
    } else {
        None
    };
    let (params, store) = match base_tag {
        0 | 1 => {
            let (bits, b) = (h.param_a, h.param_b);
            if bits == 0 || bits % 64 != 0 {
                return Err(bad_params(format!(
                    "Bloom width {bits} is not a positive multiple of 64"
                )));
            }
            if b == 0 || b > MAX_BLOOM_HASHES as u64 {
                return Err(bad_params(format!(
                    "Bloom hash count {b} outside 1..={MAX_BLOOM_HASHES}"
                )));
            }
            let view_words = bits / 64;
            // Per-set widths: uniform stores repeat the header's, a
            // stratified store reads them off the (validated) table.
            let strata_bits = strat
                .as_ref()
                .map(|st| validate_bloom_strata(&st.pairs, b))
                .transpose()?;
            let word_bytes_total = match (&strat, &strata_bits) {
                (Some(st), Some(bits_v)) => checked_total(
                    st.counts()
                        .iter()
                        .zip(bits_v)
                        .map(|(&c, &w)| expected_bytes(c, w as u64 / 8)),
                )?,
                _ => expected_bytes(n, view_words * 8)?,
            };
            if base_tag == 0 {
                let (w_at, o_at) = (idx(BloomWords), idx(BloomOnes));
                check_len(BloomWords, entries[w_at].1, word_bytes_total)?;
                check_len(BloomOnes, entries[o_at].1, expected_bytes(n, 4)?)?;
                let words = cow_u64s(payloads[w_at]);
                let ones = cow_u32s(payloads[o_at]);
                let col = match (&strat, strata_bits) {
                    (Some(st), Some(bits_v)) => BloomCollectionIn::from_raw_words_stratified(
                        words, bits_v, st.assign, b as usize, h.seed,
                    ),
                    _ => BloomCollectionIn::from_raw_words(
                        words,
                        view_words as usize,
                        b as usize,
                        h.seed,
                    ),
                };
                // The constructor recounts every filter; the persisted
                // cache must agree bit for bit.
                if col.raw_ones() != &ones[..] {
                    return Err(invariant(
                        BloomOnes,
                        "persisted popcount cache disagrees with the recounted filter words",
                    ));
                }
                (
                    SketchParams::Bloom {
                        bits_per_set: bits as usize,
                        b: b as usize,
                    },
                    SketchStoreIn::Bloom(col),
                )
            } else {
                // 4-bit counters, 16 per word — 4× the read view's bytes,
                // per stratum and in total.
                let (c_at, v_at) = (idx(CbfCounters), idx(CbfView));
                let counter_bytes_total = word_bytes_total
                    .checked_mul(4)
                    .ok_or_else(|| bad_params("section size overflows"))?;
                check_len(CbfCounters, entries[c_at].1, counter_bytes_total)?;
                check_len(CbfView, entries[v_at].1, word_bytes_total)?;
                let counters = cow_u64s(payloads[c_at]);
                let view = cow_u64s(payloads[v_at]);
                let col = match (&strat, strata_bits) {
                    (Some(st), Some(bits_v)) => {
                        CountingBloomCollectionIn::from_counter_words_stratified(
                            counters, bits_v, st.assign, b as usize, h.seed,
                        )
                    }
                    _ => CountingBloomCollectionIn::from_counter_words(
                        counters,
                        bits as usize,
                        b as usize,
                        h.seed,
                    ),
                };
                // The read view is fully determined by the counters
                // (counter > 0 ⇔ bit set); a mismatch means one of the
                // two sections is stale or forged.
                if col.read_view().raw_words() != &view[..] {
                    return Err(invariant(
                        CbfView,
                        "persisted read view disagrees with the view derived from the \
                         counters (counter > 0 ⇔ bit set)",
                    ));
                }
                (
                    SketchParams::CountingBloom {
                        bits_per_set: bits as usize,
                        b: b as usize,
                    },
                    SketchStoreIn::CountingBloom(col),
                )
            }
        }
        2 => {
            let k = h.param_a;
            if k == 0 {
                return Err(bad_params("MinHash k must be ≥ 1"));
            }
            if h.param_b != 0 {
                return Err(bad_params("param B must be 0 for k-hash MinHash"));
            }
            let strata_ks = strat
                .as_ref()
                .map(|st| validate_k_strata(&st.pairs, "MinHash"))
                .transpose()?;
            let s_at = idx(MinHashSigs);
            let sigs_bytes = match (&strat, &strata_ks) {
                (Some(st), Some(ks)) => checked_total(
                    st.counts()
                        .iter()
                        .zip(ks)
                        .map(|(&c, &kj)| expected_bytes(c, kj as u64 * 4)),
                )?,
                _ => expected_bytes(n, k * 4)?,
            };
            check_len(MinHashSigs, entries[s_at].1, sigs_bytes)?;
            let sigs = cow_u32s(payloads[s_at]);
            let k = k as usize;
            // An empty set's signature must be all empty-slot sentinels —
            // nothing ever wrote to it. Signature widths are per-set under
            // stratification, so walk a running offset.
            let mut off = 0usize;
            for (i, &size) in sizes.iter().enumerate() {
                let w = match (&strat, &strata_ks) {
                    (Some(st), Some(ks)) => ks[st.assign[i] as usize] as usize,
                    _ => k,
                };
                if size == 0 && sigs[off..off + w].iter().any(|&s| s != u32::MAX) {
                    return Err(invariant(
                        MinHashSigs,
                        format!("set {i} is empty but its signature has occupied slots"),
                    ));
                }
                off += w;
            }
            let col = match (&strat, strata_ks) {
                (Some(st), Some(ks)) => {
                    MinHashCollectionIn::from_raw_sigs_stratified(sigs, ks, st.assign, h.seed)
                }
                _ => MinHashCollectionIn::from_raw_sigs(sigs, k, h.seed),
            };
            (SketchParams::KHash { k }, SketchStoreIn::KHash(col))
        }
        // The positional decoders index the *base* layout, so a stratified
        // store hands them the entries between the two bracket sections.
        3 | 4 => {
            #[allow(clippy::type_complexity)]
            let (e, p): (&[(SectionKind, u64, u64)], &[&[u8]]) = if strat.is_some() {
                (
                    &entries[1..entries.len() - 1],
                    &payloads[1..payloads.len() - 1],
                )
            } else {
                (entries, payloads)
            };
            if base_tag == 3 {
                decode_onehash(h, e, p, &sizes, strat.as_ref())?
            } else {
                decode_kmv(h, e, p, &sizes, strat.as_ref())?
            }
        }
        5 => {
            let p = h.param_a;
            if !(4..=16).contains(&p) {
                return Err(bad_params(format!("HLL precision {p} outside 4..=16")));
            }
            if h.param_b != 0 {
                return Err(bad_params("param B must be 0 for HLL"));
            }
            let strata_ps = match &strat {
                Some(st) => {
                    let mut ps = Vec::with_capacity(st.n_strata());
                    for (s, &(pp, bb)) in st.pairs.iter().enumerate() {
                        if !(4..=16).contains(&pp) {
                            return Err(bad_params(format!(
                                "stratum {s} HLL precision {pp} outside 4..=16"
                            )));
                        }
                        if bb != 0 {
                            return Err(bad_params(format!(
                                "stratum {s} param B must be 0 for HLL"
                            )));
                        }
                        ps.push(pp as u8);
                    }
                    Some(ps)
                }
                None => None,
            };
            let r_at = idx(HllRegisters);
            let regs_bytes = match (&strat, &strata_ps) {
                (Some(st), Some(ps)) => checked_total(
                    st.counts()
                        .iter()
                        .zip(ps)
                        .map(|(&c, &pj)| expected_bytes(c, 1u64 << pj)),
                )?,
                _ => expected_bytes(n, 1 << p)?,
            };
            check_len(HllRegisters, entries[r_at].1, regs_bytes)?;
            // Raw bytes need neither endianness nor alignment — always
            // served in place.
            let registers = payloads[r_at];
            // A register holds the max rank seen; rank caps at
            // 64 − p + 1 leading-zero bits + 1, under the set's own
            // precision.
            let mut off = 0usize;
            for i in 0..n_us {
                let p_i = match (&strat, &strata_ps) {
                    (Some(st), Some(ps)) => ps[st.assign[i] as usize],
                    _ => p as u8,
                };
                let m = 1usize << p_i;
                let max_rank = 64 - p_i + 1;
                if let Some(pos) = registers[off..off + m].iter().position(|&r| r > max_rank) {
                    return Err(invariant(
                        HllRegisters,
                        format!(
                            "set {i} register {pos} holds rank {} above the precision-{p_i} \
                             maximum {max_rank}",
                            registers[off + pos]
                        ),
                    ));
                }
                off += m;
            }
            let col = match (&strat, strata_ps) {
                (Some(st), Some(ps)) => HyperLogLogCollectionIn::from_raw_registers_stratified(
                    registers, ps, st.assign, h.seed,
                ),
                _ => HyperLogLogCollectionIn::from_raw_registers(registers, p as u8, h.seed),
            };
            (
                SketchParams::Hll { precision: p as u8 },
                SketchStoreIn::Hll(col),
            )
        }
        // `layout_for` already rejected unknown tags.
        tag => return Err(SnapshotError::BadRepresentation { tag }),
    };
    debug_assert_eq!(sizes.len(), n_us);
    let stratified = strat.as_ref().map(|st| {
        StratifiedParams::new(
            st.pairs
                .iter()
                .map(|&(a, b)| stratum_sketch_params(base_tag, a, b))
                .collect(),
            st.assign.to_vec(),
        )
    });
    Ok(ProbGraphIn::from_parts(
        store, sizes, est, params, stratified, h.seed,
    ))
}

/// Bottom-k reconstruction: the layout has the most redundant structure
/// of any store, and all of it is validated — offsets shape, region
/// capacities, live lengths, ascending packed `(hash, element)` order,
/// and per-element hash integrity under the persisted seed.
fn decode_onehash<'a>(
    h: &Header,
    entries: &[(SectionKind, u64, u64)],
    payloads: &[&'a [u8]],
    sizes: &[u32],
    strat: Option<&StratumTable<'a>>,
) -> Result<(SketchParams, SketchStoreIn<'a>), SnapshotError> {
    use SectionKind::*;
    let n = h.n_sets;
    let k = h.param_a;
    if k == 0 {
        return Err(bad_params("bottom-k k must be ≥ 1"));
    }
    let strided = match h.param_b {
        0 => false,
        1 => true,
        other => return Err(bad_params(format!("bottom-k strided flag {other} not 0/1"))),
    };
    let strata_ks = strat
        .map(|st| validate_k_strata(&st.pairs, "bottom-k"))
        .transpose()?;
    // The per-set sample cap: the header's k, or the set's stratum's.
    let cap_of = |i: usize| match (&strat, &strata_ks) {
        (Some(st), Some(ks)) => ks[st.assign[i] as usize] as usize,
        _ => k as usize,
    };
    check_len(BkOffsets, entries[3].1, expected_bytes(n + 1, 4)?)?;
    check_len(BkLens, entries[4].1, expected_bytes(n, 4)?)?;
    check_len(BkSetSizes, entries[5].1, expected_bytes(n, 4)?)?;
    if entries[1].1 != entries[2].1 {
        return Err(SnapshotError::SectionLength {
            section: BkHashes,
            expected_bytes: entries[1].1,
            got_bytes: entries[2].1,
        });
    }
    if !entries[1].1.is_multiple_of(4) {
        return Err(SnapshotError::SectionLength {
            section: BkElems,
            expected_bytes: entries[1].1 / 4 * 4,
            got_bytes: entries[1].1,
        });
    }
    if strided {
        let elems_bytes = match (&strat, &strata_ks) {
            (Some(st), Some(ks)) => checked_total(
                st.counts()
                    .iter()
                    .zip(ks)
                    .map(|(&c, &kj)| expected_bytes(c, kj as u64 * 4)),
            )?,
            _ => expected_bytes(n, k * 4)?,
        };
        check_len(BkElems, entries[1].1, elems_bytes)?;
    }
    let elems = cow_u32s(payloads[1]);
    let hashes = cow_u32s(payloads[2]);
    let offsets = cow_u32s(payloads[3]);
    let lens = cow_u32s(payloads[4]);
    let set_sizes = cow_u32s(payloads[5]);
    let k_us = k as usize;
    if offsets[0] != 0 {
        return Err(invariant(BkOffsets, "offsets must start at 0"));
    }
    if *offsets.last().unwrap_or(&0) as usize != elems.len() {
        return Err(invariant(
            BkOffsets,
            "final offset disagrees with the element array length",
        ));
    }
    let family = HashFamily::new(1, h.seed);
    // Strided offsets are the cumulative per-set caps (`i·k` uniformly).
    let mut cap_run = 0usize;
    for i in 0..n as usize {
        let (start, end) = (offsets[i] as usize, offsets[i + 1] as usize);
        if end < start {
            return Err(invariant(BkOffsets, format!("offsets decrease at set {i}")));
        }
        let cap = end - start;
        let k_i = cap_of(i);
        if cap > k_i {
            return Err(invariant(
                BkOffsets,
                format!("set {i} region capacity {cap} exceeds its cap k = {k_i}"),
            ));
        }
        if strided && start != cap_run {
            return Err(invariant(
                BkOffsets,
                format!("strided layout requires offset {i} = the cumulative caps"),
            ));
        }
        cap_run += k_i;
        let len = lens[i] as usize;
        if len > cap {
            return Err(invariant(
                BkLens,
                format!("set {i} live length {len} exceeds region capacity {cap}"),
            ));
        }
        if !strided && len != cap {
            return Err(invariant(
                BkLens,
                format!("tight-packed layout requires set {i} length {len} to fill its region"),
            ));
        }
        if set_sizes[i] != sizes[i] {
            return Err(invariant(
                BkSetSizes,
                format!("set {i} recorded size disagrees with the Sizes section"),
            ));
        }
        if (len as u32) > set_sizes[i] {
            return Err(invariant(
                BkLens,
                format!("set {i} holds more samples than its recorded size"),
            ));
        }
        let mut prev_key: Option<u64> = None;
        for t in start..start + len {
            let key = (hashes[t] as u64) << 32 | elems[t] as u64;
            if prev_key.is_some_and(|p| p >= key) {
                return Err(invariant(
                    BkElems,
                    format!("set {i} sample not in strictly ascending (hash, element) order"),
                ));
            }
            prev_key = Some(key);
            if family.hash32(0, elems[t] as u64) != hashes[t] {
                return Err(invariant(
                    BkHashes,
                    format!("set {i} stored hash disagrees with hashing its element"),
                ));
            }
        }
    }
    let col = match (strat, strata_ks) {
        (Some(st), Some(ks)) => BottomKCollectionIn::from_raw_parts_stratified(
            elems, hashes, offsets, lens, set_sizes, ks, st.assign, h.seed, strided,
        ),
        _ => BottomKCollectionIn::from_raw_parts(
            elems, hashes, offsets, lens, set_sizes, k_us, h.seed, strided,
        ),
    };
    Ok((
        SketchParams::OneHash { k: k_us },
        SketchStoreIn::OneHash(col),
    ))
}

/// KMV reconstruction: per-sketch lengths bounded by `k`, hashes finite,
/// strictly ascending, and inside the unit interval `(0, 1]` (which also
/// rejects NaN), recorded sizes consistent with the Sizes section.
fn decode_kmv<'a>(
    h: &Header,
    entries: &[(SectionKind, u64, u64)],
    payloads: &[&'a [u8]],
    sizes: &[u32],
    strat: Option<&StratumTable<'a>>,
) -> Result<(SketchParams, SketchStoreIn<'a>), SnapshotError> {
    use SectionKind::*;
    let n = h.n_sets;
    let k = h.param_a;
    if k == 0 {
        return Err(bad_params("KMV k must be ≥ 1"));
    }
    if h.param_b != 0 {
        return Err(bad_params("param B must be 0 for KMV"));
    }
    let strata_ks = strat
        .map(|st| validate_k_strata(&st.pairs, "KMV"))
        .transpose()?;
    let k_of = |i: usize| match (&strat, &strata_ks) {
        (Some(st), Some(ks)) => ks[st.assign[i] as usize] as u64,
        _ => k,
    };
    check_len(KmvLens, entries[2].1, expected_bytes(n, 4)?)?;
    check_len(KmvSetSizes, entries[1].1, expected_bytes(n, 8)?)?;
    let lens = cow_u32s(payloads[2]);
    let set_sizes = cow_u64s(payloads[1]);
    let mut total: u64 = 0;
    for (i, &len) in lens.iter().enumerate() {
        let k_i = k_of(i);
        if len as u64 > k_i {
            return Err(invariant(
                KmvLens,
                format!("sketch {i} holds {len} hashes, above its k = {k_i}"),
            ));
        }
        total = total
            .checked_add(len as u64)
            .ok_or_else(|| bad_params("KMV hash counts overflow"))?;
    }
    check_len(KmvHashes, entries[0].1, expected_bytes(total, 8)?)?;
    let hashes = cow_f64s(payloads[0]);
    let k_us = k as usize;
    let mut sketches: Vec<KmvSketchIn<'a>> = Vec::with_capacity(n as usize);
    let mut off = 0usize;
    for i in 0..n as usize {
        if set_sizes[i] != sizes[i] as u64 {
            return Err(invariant(
                KmvSetSizes,
                format!("sketch {i} recorded size disagrees with the Sizes section"),
            ));
        }
        let (start, end) = (off, off + lens[i] as usize);
        off = end;
        let mut prev = 0.0f64;
        for &x in &hashes[start..end] {
            // `unit()` maps into (0, 1]; NaN fails the comparison too.
            if !(x > prev && x <= 1.0) {
                return Err(invariant(
                    KmvHashes,
                    format!("sketch {i} hashes must be strictly ascending inside (0, 1]"),
                ));
            }
            prev = x;
        }
        // Per-sketch views stay zero-copy only when the flat array
        // borrows the wire bytes; an owned decode is re-sliced per sketch.
        let k_i = k_of(i) as usize;
        sketches.push(match &hashes {
            Cow::Borrowed(all) => {
                KmvSketchIn::from_raw_parts(&all[start..end], k_i, set_sizes[i] as usize)
            }
            Cow::Owned(all) => {
                KmvSketchIn::from_raw_parts(all[start..end].to_vec(), k_i, set_sizes[i] as usize)
            }
        });
    }
    let col = match (strat, strata_ks) {
        (Some(st), Some(ks)) => {
            KmvCollectionIn::from_sketches_stratified(sketches, ks, st.assign, h.seed)
        }
        _ => KmvCollectionIn::from_sketches(sketches, h.seed),
    };
    Ok((SketchParams::Kmv { k: k_us }, SketchStoreIn::Kmv(col)))
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

/// Per-section damage status from [`inspect`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectionStatus {
    /// Present in full with a matching checksum.
    Ok,
    /// The file ends before the declared payload does.
    Truncated {
        /// Payload bytes actually present.
        available: u64,
    },
    /// Present in full but the checksum does not match.
    ChecksumMismatch,
}

/// One section-table row as seen by [`inspect`].
#[derive(Clone, Debug)]
pub struct SectionReport {
    /// The decoded kind, if the tag is known.
    pub kind: Option<SectionKind>,
    /// The raw tag from the table.
    pub kind_tag: u32,
    /// The payload length the table declares.
    pub declared_len: u64,
    /// Whether the payload survived.
    pub status: SectionStatus,
}

/// Best-effort structural damage report from [`inspect`]. Field-level so
/// recovery tooling can decide what is salvageable; [`SnapshotReport::ok`]
/// collapses it to "would the structural checks pass".
#[derive(Clone, Debug)]
pub struct SnapshotReport {
    /// Total bytes inspected.
    pub len: usize,
    /// Magic bytes matched.
    pub magic_ok: bool,
    /// The version field, when enough bytes exist to read it.
    pub version: Option<u32>,
    /// Magic, version, and header checksum all valid.
    pub header_ok: bool,
    /// The representation tag, when readable.
    pub representation_tag: Option<u32>,
    /// The set count, when readable.
    pub n_sets: Option<u64>,
    /// Section table checksum valid.
    pub table_ok: bool,
    /// One entry per table row that could be read.
    pub sections: Vec<SectionReport>,
}

impl SnapshotReport {
    /// True when every structural check (header, table, each payload
    /// checksum) passed — semantic invariants still run at load.
    pub fn ok(&self) -> bool {
        self.header_ok
            && self.table_ok
            && self.sections.iter().all(|s| s.status == SectionStatus::Ok)
    }
}

/// Surveys a snapshot without constructing anything: which regions are
/// intact, which are damaged, and what the header claims. Never fails —
/// arbitrary bytes yield a report, not an error — so it is safe to run on
/// exactly the files [`ProbGraph::from_snapshot_bytes`] rejects.
pub fn inspect(bytes: &[u8]) -> SnapshotReport {
    let mut r = SnapshotReport {
        len: bytes.len(),
        magic_ok: false,
        version: None,
        header_ok: false,
        representation_tag: None,
        n_sets: None,
        table_ok: false,
        sections: Vec::new(),
    };
    if bytes.len() < HEADER_LEN {
        return r;
    }
    r.magic_ok = bytes[..8] == SNAPSHOT_MAGIC;
    r.version = Some(u32le(bytes, 8));
    r.representation_tag = Some(u32le(bytes, 12));
    r.n_sets = Some(u64le(bytes, 32));
    r.header_ok = r.magic_ok
        && r.version == Some(SNAPSHOT_VERSION)
        && xxh64(&bytes[..HEADER_LEN - 8], CHECKSUM_SEED) == u64le(bytes, HEADER_LEN - 8);
    let count = u32le(bytes, 20).min(MAX_SECTIONS) as usize;
    let table_end = HEADER_LEN + count * ENTRY_LEN + 8;
    if bytes.len() < table_end {
        return r;
    }
    r.table_ok =
        xxh64(&bytes[HEADER_LEN..table_end - 8], CHECKSUM_SEED) == u64le(bytes, table_end - 8);
    let mut off = table_end as u64;
    for i in 0..count {
        let e = HEADER_LEN + i * ENTRY_LEN;
        let tag = u32le(bytes, e);
        let len = u64le(bytes, e + 8);
        let sum = u64le(bytes, e + 16);
        let available = (bytes.len() as u64).saturating_sub(off);
        let status = if available < len {
            SectionStatus::Truncated { available }
        } else if xxh64(&bytes[off as usize..(off + len) as usize], CHECKSUM_SEED) == sum {
            SectionStatus::Ok
        } else {
            SectionStatus::ChecksumMismatch
        };
        r.sections.push(SectionReport {
            kind: SectionKind::from_tag(tag),
            kind_tag: tag,
            declared_len: len,
            status,
        });
        off = off.saturating_add(len);
    }
    r
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

impl<'a> ProbGraphIn<'a> {
    /// Serializes this ProbGraph into the version-2 snapshot format — a
    /// pure in-memory flatten (no I/O). Deterministic: the same store
    /// yields the same bytes, and a loaded snapshot re-serializes to the
    /// identical byte string, whether it was loaded copying or borrowed.
    pub fn snapshot_to_bytes(&self) -> Vec<u8> {
        encode(self)
    }

    /// Reconstructs a graph view that borrows `bytes` wherever alignment
    /// and host endianness allow — the validated wire payloads double as
    /// the live sketch arrays, so an 8-aligned buffer (a mapped file, an
    /// [`AlignedBytes`] receive buffer) is served with no per-array
    /// allocation or copy. Validation is identical to
    /// [`ProbGraph::from_snapshot_bytes`]: the two constructors accept
    /// and reject exactly the same byte strings, and their stores
    /// estimate bit-identically.
    pub fn from_snapshot_bytes_borrowed(bytes: &'a [u8]) -> Result<ProbGraphIn<'a>, SnapshotError> {
        decode_in(bytes)
    }
}

impl ProbGraph {
    /// Reconstructs a ProbGraph from snapshot bytes, validating
    /// everything — framing, checksums, parameter sanity, and the derived
    /// invariants of each store — before any collection is built. Never
    /// panics on malformed input; every failure is a typed
    /// [`SnapshotError`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<ProbGraph, SnapshotError> {
        decode_in(bytes).map(ProbGraphIn::into_owned)
    }

    /// Atomically writes a snapshot to `path`: the bytes go to a fresh
    /// temp file in the same directory, are fsynced, and rename over the
    /// destination (followed by a best-effort directory fsync), so a
    /// crash at any point leaves either the previous file or the complete
    /// new one.
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let bytes = self.snapshot_to_bytes();
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => Path::new(".").to_path_buf(),
        };
        let stem = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "snapshot".to_string());
        let tmp = dir.join(format!(".{stem}.tmp.{}", std::process::id()));
        let write_tmp = (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()
        })();
        if let Err(e) = write_tmp.and_then(|()| fs::rename(&tmp, path)) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Durability of the rename itself; failures here do not make the
        // snapshot unreadable, so they are not surfaced.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Reads and validates a snapshot file —
    /// [`ProbGraph::from_snapshot_bytes`] over [`std::fs::read`].
    pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<ProbGraph, SnapshotError> {
        ProbGraph::from_snapshot_bytes(&fs::read(path)?)
    }
}

// ---------------------------------------------------------------------------
// Zero-copy loading: mmap and aligned receive buffers
// ---------------------------------------------------------------------------

/// A byte buffer whose base is 8-aligned, so a snapshot received into it
/// (e.g. off a socket during sketch exchange) decodes zero-copy through
/// [`ProbGraphIn::from_snapshot_bytes_borrowed`] exactly like a mapped
/// file. `Vec<u8>` makes no alignment promise; this wraps a `Vec<u64>`.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBytes")
            .field("len", &self.len)
            .finish()
    }
}

impl AlignedBytes {
    /// A zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> AlignedBytes {
        AlignedBytes {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Copies `bytes` into a fresh aligned buffer.
    pub fn copy_from(bytes: &[u8]) -> AlignedBytes {
        let mut buf = AlignedBytes::zeroed(bytes.len());
        buf.copy_from_slice(bytes);
        buf
    }
}

impl std::ops::Deref for AlignedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        // SAFETY: `words` owns ≥ `len` initialized bytes at its base.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

impl std::ops::DerefMut for AlignedBytes {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: as in `Deref`, and `&mut self` guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }
}

/// Minimal read-only `mmap(2)` binding — the workspace takes no external
/// dependencies, and only snapshot loading needs the syscall.
#[cfg(unix)]
mod mmap_raw {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

#[cfg(unix)]
struct MmapBuf {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is private and read-only (PROT_READ | MAP_PRIVATE),
// exclusively owned by this buffer until `munmap` runs in Drop.
#[cfg(unix)]
unsafe impl Send for MmapBuf {}
#[cfg(unix)]
unsafe impl Sync for MmapBuf {}

#[cfg(unix)]
impl MmapBuf {
    fn map(file: &File, len: usize) -> std::io::Result<MmapBuf> {
        use std::os::fd::AsRawFd;
        if len == 0 {
            // mmap rejects zero-length mappings; an empty snapshot file
            // still deserves the same typed TooShort error as empty bytes.
            return Ok(MmapBuf {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            mmap_raw::mmap(
                std::ptr::null_mut(),
                len,
                mmap_raw::PROT_READ,
                mmap_raw::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(MmapBuf { ptr, len })
    }

    fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: the mapping spans exactly `len` readable bytes and
        // outlives this borrow (munmap only runs in Drop).
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }
}

#[cfg(unix)]
impl Drop for MmapBuf {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: `ptr`/`len` are the exact values mmap returned.
            unsafe { mmap_raw::munmap(self.ptr, self.len) };
        }
    }
}

/// A snapshot file mapped read-only and validated in place — the mapping
/// guard returned by [`load_snapshot_mmap`].
///
/// Page-aligned mapping base + the v2 coarsest-first section order means
/// [`SnapshotMapping::graph`] serves the sketch arrays straight out of
/// the page cache with no per-array copy. The graph view borrows the
/// mapping, so the guard must outlive it; decoding runs per call (its
/// cost is checksumming, which the eager validation in
/// [`load_snapshot_mmap`] has already proven will succeed).
#[cfg(unix)]
pub struct SnapshotMapping {
    buf: MmapBuf,
}

#[cfg(unix)]
impl SnapshotMapping {
    /// The raw mapped snapshot bytes.
    pub fn bytes(&self) -> &[u8] {
        self.buf.bytes()
    }

    /// Decodes a graph view borrowing the mapped bytes — zero-copy on
    /// little-endian hosts. Validation is identical to
    /// [`ProbGraph::from_snapshot_bytes`].
    pub fn graph(&self) -> Result<ProbGraphIn<'_>, SnapshotError> {
        decode_in(self.buf.bytes())
    }
}

/// Maps a snapshot file read-only and validates it in place, without
/// reading it into an allocation. Corruption surfaces here, eagerly, with
/// the same typed [`SnapshotError`]s as [`ProbGraph::load_snapshot`];
/// the returned guard's [`SnapshotMapping::graph`] then cannot fail for
/// reasons other than the file changing underneath the mapping.
#[cfg(unix)]
pub fn load_snapshot_mmap<P: AsRef<Path>>(path: P) -> Result<SnapshotMapping, SnapshotError> {
    let file = File::open(path)?;
    let len = usize::try_from(file.metadata()?.len())
        .map_err(|_| bad_params("snapshot exceeds address space"))?;
    let mapping = SnapshotMapping {
        buf: MmapBuf::map(&file, len)?,
    };
    mapping.graph()?;
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{PgConfig, Representation};
    use pg_graph::gen;

    fn sample(rep: Representation) -> ProbGraph {
        let g = gen::erdos_renyi_gnm(60, 400, 3);
        ProbGraph::build(&g, &PgConfig::new(rep, 0.3))
    }

    #[test]
    fn header_layout_is_64_bytes() {
        let bytes = sample(Representation::Hll).snapshot_to_bytes();
        assert_eq!(&bytes[..8], &SNAPSHOT_MAGIC);
        assert_eq!(u32le(&bytes, 8), SNAPSHOT_VERSION);
        assert_eq!(u32le(&bytes, 12), 5); // Hll tag
        assert_eq!(u64le(&bytes, 32), 60); // n_sets
        assert_eq!(
            u64le(&bytes, 56),
            xxh64(&bytes[..56], CHECKSUM_SEED),
            "header checksum covers the first 56 bytes"
        );
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for rep in [
            Representation::Bloom { b: 2 },
            Representation::CountingBloom { b: 2 },
            Representation::KHash,
            Representation::OneHash,
            Representation::Kmv,
            Representation::Hll,
        ] {
            let pg = sample(rep);
            let bytes = pg.snapshot_to_bytes();
            let back =
                ProbGraph::from_snapshot_bytes(&bytes).unwrap_or_else(|e| panic!("{rep:?}: {e}"));
            assert_eq!(back.snapshot_to_bytes(), bytes, "{rep:?}");
            assert_eq!(back.params(), pg.params(), "{rep:?}");
            assert_eq!(back.seed(), pg.seed(), "{rep:?}");
            assert_eq!(back.sizes(), pg.sizes(), "{rep:?}");
        }
    }

    #[test]
    fn empty_probgraph_roundtrips() {
        let g = pg_graph::CsrGraph::from_edges(0, &[]);
        for rep in [Representation::Bloom { b: 1 }, Representation::OneHash] {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.2));
            let bytes = pg.snapshot_to_bytes();
            let back = ProbGraph::from_snapshot_bytes(&bytes).expect("empty snapshot loads");
            assert!(back.is_empty());
            assert_eq!(back.snapshot_to_bytes(), bytes);
        }
    }

    /// Recomputes every checksum (payloads, table, header) after a test
    /// mutates payload bytes in place — so semantic validation is what
    /// rejects the file, not the checksums.
    fn reseal(bytes: &mut [u8]) {
        let count = u32le(bytes, 20) as usize;
        let table_end = HEADER_LEN + count * ENTRY_LEN + 8;
        let mut off = table_end;
        for i in 0..count {
            let e = HEADER_LEN + i * ENTRY_LEN;
            let len = u64le(bytes, e + 8) as usize;
            let sum = xxh64(&bytes[off..off + len], CHECKSUM_SEED);
            bytes[e + 16..e + 24].copy_from_slice(&sum.to_le_bytes());
            off += len;
        }
        let tsum = xxh64(&bytes[HEADER_LEN..table_end - 8], CHECKSUM_SEED);
        bytes[table_end - 8..table_end].copy_from_slice(&tsum.to_le_bytes());
        let hsum = xxh64(&bytes[..HEADER_LEN - 8], CHECKSUM_SEED);
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&hsum.to_le_bytes());
    }

    fn stratified_sample(rep: Representation) -> ProbGraph {
        // Dense enough that every stratum's byte share clears the floors,
        // so the build genuinely resolves multiple strata.
        let g = gen::erdos_renyi_gnm(800, 24_000, 3);
        ProbGraph::build(
            &g,
            &PgConfig::stratified(rep, 0.3, pg_sketch::StrataSpec::skewed_default()),
        )
    }

    #[test]
    fn stratified_roundtrip_is_bit_identical() {
        let g = gen::erdos_renyi_gnm(800, 24_000, 3);
        for rep in [
            Representation::Bloom { b: 2 },
            Representation::CountingBloom { b: 2 },
            Representation::KHash,
            Representation::OneHash,
            Representation::Kmv,
            Representation::Hll,
        ] {
            let pg = stratified_sample(rep);
            let sp = pg
                .stratified_params()
                .unwrap_or_else(|| panic!("{rep:?}: expected a stratified build"))
                .clone();
            assert!(sp.n_strata() > 1, "{rep:?}");
            let bytes = pg.snapshot_to_bytes();
            assert_eq!(
                u32le(&bytes, 12) & REP_STRATIFIED,
                REP_STRATIFIED,
                "{rep:?}: stratified flag set on the wire"
            );
            let back =
                ProbGraph::from_snapshot_bytes(&bytes).unwrap_or_else(|e| panic!("{rep:?}: {e}"));
            assert_eq!(back.snapshot_to_bytes(), bytes, "{rep:?}");
            assert_eq!(back.params(), pg.params(), "{rep:?}");
            assert_eq!(back.stratified_params(), Some(&sp), "{rep:?}");
            assert_eq!(back.sizes(), pg.sizes(), "{rep:?}");
            for (u, v) in g.edges().take(200) {
                assert_eq!(
                    back.estimate_intersection(u, v),
                    pg.estimate_intersection(u, v),
                    "{rep:?} ({u},{v})"
                );
            }
            // The borrowed (zero-copy) load agrees too.
            let aligned = AlignedBytes::copy_from(&bytes);
            let borrowed = ProbGraphIn::from_snapshot_bytes_borrowed(&aligned)
                .unwrap_or_else(|e| panic!("{rep:?}: {e}"));
            assert_eq!(borrowed.snapshot_to_bytes(), bytes, "{rep:?}");
            assert_eq!(borrowed.stratified_params(), Some(&sp), "{rep:?}");
        }
    }

    #[test]
    fn stratified_hostile_bytes_are_typed_not_panicked() {
        let pg = stratified_sample(Representation::Bloom { b: 2 });
        let bytes = pg.snapshot_to_bytes();
        let payload_base = {
            let count = u32le(&bytes, 20) as usize;
            HEADER_LEN + count * ENTRY_LEN + 8
        };
        // The StratumParams table leads the payloads: 16 bytes per stratum.
        // Corrupt stratum 1's width to a non-power-of-two multiple.
        {
            let mut b = bytes.clone();
            b[payload_base + 16..payload_base + 24].copy_from_slice(&(64u64 * 3).to_le_bytes());
            reseal(&mut b);
            assert!(matches!(
                ProbGraph::from_snapshot_bytes(&b),
                Err(SnapshotError::BadParams { .. } | SnapshotError::SectionLength { .. })
            ));
        }
        // Zero stratum 1's width.
        {
            let mut b = bytes.clone();
            b[payload_base + 16..payload_base + 24].copy_from_slice(&0u64.to_le_bytes());
            reseal(&mut b);
            assert!(matches!(
                ProbGraph::from_snapshot_bytes(&b),
                Err(SnapshotError::BadParams { .. })
            ));
        }
        // Stratum 0 disagreeing with the header's param A.
        {
            let mut b = bytes.clone();
            let w0 = u64le(&b, payload_base);
            b[payload_base..payload_base + 8].copy_from_slice(&(w0 * 2).to_le_bytes());
            reseal(&mut b);
            assert!(matches!(
                ProbGraph::from_snapshot_bytes(&b),
                Err(SnapshotError::BadParams { .. })
            ));
        }
        // Stratum 1's hash count diverging from the header's b.
        {
            let mut b = bytes.clone();
            b[payload_base + 24..payload_base + 32].copy_from_slice(&7u64.to_le_bytes());
            reseal(&mut b);
            assert!(matches!(
                ProbGraph::from_snapshot_bytes(&b),
                Err(SnapshotError::BadParams { .. })
            ));
        }
        // An assignment byte pointing past the stratum table. The assign
        // section is the last payload.
        {
            let mut b = bytes.clone();
            let last = b.len() - 1;
            b[last] = 200;
            reseal(&mut b);
            assert!(matches!(
                ProbGraph::from_snapshot_bytes(&b),
                Err(SnapshotError::InvariantViolation { .. })
            ));
        }
        // Flipping an assignment byte to another *valid* stratum breaks
        // the derived section lengths — the file is internally
        // inconsistent, not silently misloaded.
        {
            let mut b = bytes.clone();
            let last = b.len() - 1;
            b[last] = if b[last] == 0 { 1 } else { 0 };
            reseal(&mut b);
            assert!(ProbGraph::from_snapshot_bytes(&b).is_err());
        }
        // A uniform representation tag carrying stratified sections — the
        // section count no longer matches the uniform layout.
        {
            let mut b = bytes.clone();
            let tag = u32le(&b, 12) & !REP_STRATIFIED;
            b[12..16].copy_from_slice(&tag.to_le_bytes());
            reseal(&mut b);
            assert!(matches!(
                ProbGraph::from_snapshot_bytes(&b),
                Err(SnapshotError::SectionCount { .. })
            ));
        }
    }

    #[test]
    fn obvious_garbage_is_typed_not_panicked() {
        assert!(matches!(
            ProbGraph::from_snapshot_bytes(&[]),
            Err(SnapshotError::TooShort { .. })
        ));
        assert!(matches!(
            ProbGraph::from_snapshot_bytes(&[0u8; 64]),
            Err(SnapshotError::BadMagic)
        ));
        let mut bytes = sample(Representation::KHash).snapshot_to_bytes();
        bytes[9] ^= 1; // version field
        assert!(matches!(
            ProbGraph::from_snapshot_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn inspect_reports_damage_without_failing() {
        let pg = sample(Representation::Bloom { b: 2 });
        let mut bytes = pg.snapshot_to_bytes();
        assert!(inspect(&bytes).ok());
        // Flip one bit inside the BloomWords payload (the first section in
        // the v2 Bloom layout, at the payload base) and inspect again.
        let words_start = HEADER_LEN + 3 * ENTRY_LEN + 8;
        bytes[words_start + 5] ^= 0x10;
        let report = inspect(&bytes);
        assert!(!report.ok());
        assert!(report.header_ok && report.table_ok);
        assert_eq!(report.sections[0].status, SectionStatus::ChecksumMismatch);
        assert_eq!(report.sections[0].kind, Some(SectionKind::BloomWords));
        assert_eq!(report.sections[1].status, SectionStatus::Ok);
        assert_eq!(report.sections[1].kind, Some(SectionKind::Sizes));
        assert_eq!(report.sections[2].status, SectionStatus::Ok);
        // Arbitrary garbage still yields a report.
        assert!(!inspect(&[0xAB; 200]).ok());
        assert!(!inspect(b"tiny").ok());
    }

    #[test]
    fn borrowed_load_matches_copying_load() {
        for rep in [
            Representation::Bloom { b: 2 },
            Representation::CountingBloom { b: 2 },
            Representation::KHash,
            Representation::OneHash,
            Representation::Kmv,
            Representation::Hll,
        ] {
            let pg = sample(rep);
            let bytes = AlignedBytes::copy_from(&pg.snapshot_to_bytes());
            let borrowed = ProbGraphIn::from_snapshot_bytes_borrowed(&bytes)
                .unwrap_or_else(|e| panic!("{rep:?}: {e}"));
            assert_eq!(borrowed.snapshot_to_bytes(), &bytes[..], "{rep:?}");
            assert_eq!(borrowed.sizes(), pg.sizes(), "{rep:?}");
            assert_eq!(borrowed.params(), pg.params(), "{rep:?}");
        }
    }

    #[test]
    fn unaligned_bytes_still_load_borrowed() {
        // Shift the snapshot off 8-alignment: the borrow fast path cannot
        // apply, and the copying fallback must decode identically.
        let pg = sample(Representation::Kmv);
        let bytes = pg.snapshot_to_bytes();
        let mut shifted = AlignedBytes::zeroed(bytes.len() + 1);
        shifted[1..].copy_from_slice(&bytes);
        let back = ProbGraphIn::from_snapshot_bytes_borrowed(&shifted[1..]).expect("loads");
        assert_eq!(back.snapshot_to_bytes(), bytes);
    }

    #[cfg(unix)]
    #[test]
    fn mmap_load_matches_copying_load() {
        let dir = std::env::temp_dir().join(format!("pg-snap-mmap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bloom.pgsnap");
        let pg = sample(Representation::Bloom { b: 2 });
        pg.save_snapshot(&path).unwrap();
        let mapping = load_snapshot_mmap(&path).expect("mmap load");
        let view = mapping.graph().expect("validated at load");
        assert_eq!(view.snapshot_to_bytes(), pg.snapshot_to_bytes());
        assert_eq!(view.sizes(), pg.sizes());
        drop(view);
        drop(mapping);
        // Corruption surfaces at load time, typed.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot_mmap(&path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
