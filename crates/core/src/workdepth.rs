//! Operation-count instrumentation for the work/depth claims of
//! Tables IV–VI.
//!
//! Work-depth analysis is asymptotic; these counters make it *measurable*:
//! each kernel reports how many primitive operations (element comparisons,
//! word ANDs, hash evaluations) it performs, and the `table4`/`table5`/
//! `table6` experiment binaries check the measured counts against the
//! paper's formulas (`O(d_u + d_v)`, `O(B/W)`, `O(k)`, …).

use pg_graph::{CsrGraph, OrientedDag, VertexId};

/// Machine word size `W` in bits (Table I).
pub const WORD_BITS: usize = 64;

/// Operation count of a merge intersection: one comparison per loop step.
pub fn merge_ops(a: &[u32], b: &[u32]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut ops = 0u64;
    while i < a.len() && j < b.len() {
        ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    ops
}

/// Operation count of a galloping intersection: probes + binary-search
/// comparisons, `O(d_small · log d_large)`.
pub fn gallop_ops(small: &[u32], large: &[u32]) -> u64 {
    if large.is_empty() {
        return 0;
    }
    let log = (usize::BITS - large.len().leading_zeros()) as u64;
    small.len() as u64 * (log + 1)
}

/// Operation count of a Bloom-filter intersection: `B / W` word ANDs plus
/// the same number of popcounts (Table IV: `O(B_X / W)`).
pub fn bf_intersect_ops(bits_per_set: usize) -> u64 {
    2 * bits_per_set.div_ceil(WORD_BITS) as u64
}

/// Operation count of a MinHash intersection: `O(k)` (Table IV).
pub fn mh_intersect_ops(k: usize) -> u64 {
    k as u64
}

/// Construction work of one Bloom filter: `O(b · d_v)` hash evaluations
/// (Table V).
pub fn bf_construction_ops(b: usize, degree: usize) -> u64 {
    (b * degree) as u64
}

/// Construction work of one k-hash signature: `O(k · d_v)` (Table V).
pub fn khash_construction_ops(k: usize, degree: usize) -> u64 {
    (k * degree) as u64
}

/// Construction work of one 1-hash sample: `O(d_v)` hashes plus the
/// `O(d_v log d_v)` selection (we report the dominant hash term as the
/// paper does).
pub fn onehash_construction_ops(degree: usize) -> u64 {
    degree as u64
}

/// Total exact node-iterator TC work in merge operations (the CSR column
/// of Table VI, measured instead of asymptotic).
pub fn tc_work_csr(dag: &OrientedDag) -> u64 {
    pg_parallel::sum_u64(dag.num_vertices(), |v| {
        let np = dag.neighbors_plus(v as VertexId);
        np.iter()
            .map(|&u| merge_ops(np, dag.neighbors_plus(u)))
            .sum()
    })
}

/// Total PG-BF TC work in word operations (the BF column of Table VI).
pub fn tc_work_bf(dag: &OrientedDag, bits_per_set: usize) -> u64 {
    pg_parallel::sum_u64(dag.num_vertices(), |v| {
        dag.out_degree(v as VertexId) as u64 * bf_intersect_ops(bits_per_set)
    })
}

/// Total PG-MH TC work in sample operations (the MH column of Table VI).
pub fn tc_work_mh(dag: &OrientedDag, k: usize) -> u64 {
    pg_parallel::sum_u64(dag.num_vertices(), |v| {
        dag.out_degree(v as VertexId) as u64 * mh_intersect_ops(k)
    })
}

/// Measured construction work (hash evaluations) for a whole graph under
/// each representation (Table V aggregated).
pub fn construction_work(g: &CsrGraph, b: usize, k: usize) -> (u64, u64, u64) {
    let n = g.num_vertices();
    let bf = pg_parallel::sum_u64(n, |v| bf_construction_ops(b, g.degree(v as VertexId)));
    let kh = pg_parallel::sum_u64(n, |v| khash_construction_ops(k, g.degree(v as VertexId)));
    let oh = pg_parallel::sum_u64(n, |v| onehash_construction_ops(g.degree(v as VertexId)));
    (bf, kh, oh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::{gen, orient_by_degree};

    #[test]
    fn merge_ops_bounded_by_sum_of_sizes() {
        let a: Vec<u32> = (0..50).collect();
        let b: Vec<u32> = (25..100).collect();
        let ops = merge_ops(&a, &b);
        assert!(ops <= (a.len() + b.len()) as u64);
        assert!(ops >= a.len().max(b.len()) as u64 - 25);
    }

    #[test]
    fn gallop_beats_merge_for_skewed_sizes() {
        // Small set spread across the large one: merge must walk all of
        // `large`, galloping only does d_small · log d_large probes.
        let small: Vec<u32> = (0..8).map(|i| i * 12_345).collect();
        let large: Vec<u32> = (0..100_000).collect();
        assert!(gallop_ops(&small, &large) < merge_ops(&small, &large));
    }

    #[test]
    fn bf_ops_independent_of_degree() {
        // The load-balancing point of Fig. 1 panel 5: every pair costs the
        // same regardless of neighborhood sizes.
        assert_eq!(bf_intersect_ops(4096), bf_intersect_ops(4096));
        assert_eq!(bf_intersect_ops(4096), 2 * 64);
        assert_eq!(bf_intersect_ops(65), 4);
    }

    #[test]
    fn tc_work_ordering_matches_table6() {
        // On a dense graph with small sketches, PG work < CSR work —
        // the asymptotic advantage the paper claims.
        let g = gen::erdos_renyi_gnm(400, 400 * 50, 3);
        let dag = orient_by_degree(&g);
        let csr = tc_work_csr(&dag);
        let bf = tc_work_bf(&dag, 512); // B/W = 8 words
        let mh = tc_work_mh(&dag, 16);
        assert!(bf < csr, "bf={bf} csr={csr}");
        assert!(mh < csr, "mh={mh} csr={csr}");
    }

    #[test]
    fn construction_work_relations() {
        // Table V: BF work b·d, k-hash k·d, 1-hash d. With b=2 < k=8:
        // onehash < bf < khash.
        let g = gen::kronecker(8, 8, 1);
        let (bf, kh, oh) = construction_work(&g, 2, 8);
        assert!(oh < bf);
        assert!(bf < kh);
        assert_eq!(oh * 2, bf);
        assert_eq!(oh * 8, kh);
    }
}
