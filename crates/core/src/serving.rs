//! Sharded concurrent ingest with lock-free epoch-snapshot query serving.
//!
//! Everything below `ProbGraph` is single-writer: the [`MutableOracle`]
//! write path mutates sketches in place, so queries and streaming updates
//! could never overlap. This module adds the serving story on top of the
//! existing read and write paths without touching either:
//!
//! * **Sharding.** The vertex universe is split into contiguous ranges,
//!   one [`SketchStore`] *lane* per shard. Every lane is single-writer by
//!   construction — update batches are routed to per-shard queues and each
//!   lane is drained by exactly one worker (the `pg-parallel` fork/join
//!   pool), so ingest parallelizes across shards in safe Rust with no
//!   per-sketch synchronization at all.
//! * **Epoch snapshots.** [`ShardedProbGraph::publish_epoch`] gathers the
//!   lanes' already-flat word/slot arrays into one ordinary [`ProbGraph`]
//!   (a per-collection memcpy concatenation — contiguous ranges mean no
//!   permutation) and publishes it through a [`pg_parallel::EpochCell`].
//!   Readers pin snapshots **lock-free** and run any [`OracleVisitor`]
//!   row sweep against them while ingest keeps streaming; retired
//!   snapshots come back as reusable buffers, so steady-state publishes
//!   are allocation-free double-buffering.
//! * **Serial equivalence.** Lanes resolve their sketch parameters against
//!   the *global* set count and byte footprint ([`crate::pg`]'s shared
//!   planner) and apply per-batch sorted/deduped update runs exactly like
//!   [`ProbGraph::apply_batch`], so a drained epoch is bit-identical to
//!   the serial build over the same batches — pinned by
//!   `tests/streaming_equivalence.rs` for every representation, and raced
//!   under ThreadSanitizer by `tests/serving_equivalence.rs`.
//! * **Stratified lanes.** Degree-stratified geometry shards the same
//!   way: each lane slices the global per-set stratum assignment over its
//!   contiguous range while sharing the stratum parameter table, so
//!   per-lane builds stay bit-identical to the matching rows of
//!   [`ProbGraph::build_rows_stratified`] and the publish gather
//!   re-concatenates assignments along with the flat arrays. Resolved
//!   geometry (from a real degree distribution) enters through
//!   [`ShardedProbGraph::with_shards_stratified`]; a [`PgConfig`] carrying
//!   a strata spec plans against the empty stream exactly like
//!   [`ProbGraph::stream_from`] does.
//!
//! Shard count resolves through [`pg_parallel::current_shards`]
//! (`PG_SHARDS` env → one lane per hardware thread), then
//! [`ShardedProbGraph::new`] caps it against the cache-topology probe: a
//! lane should own at least one destination tile's worth of sketch bytes
//! ([`pg_parallel::tile_bytes`]), so tiny stores don't pay fan-out
//! overheads for parallelism they cannot use.
//!
//! ```
//! use pg_graph::gen;
//! use probgraph::serving::ShardedProbGraph;
//! use probgraph::{PgConfig, Representation};
//!
//! let g = gen::kronecker(8, 8, 1);
//! let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.25);
//! let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 2);
//!
//! let edges = g.edge_list();
//! srv.apply_batch(&edges);
//! let epoch = srv.publish_epoch();
//! assert_eq!(epoch, 1);
//!
//! // Reader handles are Send + Clone: queries pin epochs lock-free from
//! // any thread while the writer keeps streaming.
//! let reader = srv.reader();
//! let snap = reader.snapshot();
//! assert_eq!(snap.epoch(), 1);
//! let (u, v) = g.edges().next().unwrap();
//! assert!(snap.estimate_intersection(u, v) >= 0.0);
//! ```

use crate::oracle::{MutableOracle, OracleVisitor, UnsupportedOperation};
use crate::pg::{
    build_store, build_store_stratified, gather_store_into, resolve_params, resolve_stratified,
    Edge, PgConfig, ProbGraph, SketchStore,
};
use pg_graph::VertexId;
use pg_parallel::{EpochCell, EpochGuard};
use pg_sketch::{SketchParams, StratifiedParams};
use std::sync::Arc;

/// Below this many pending `(set, element)` updates a drain runs on the
/// calling thread — fork/join costs more than the work for live-tick
/// batches.
const PARALLEL_DRAIN_THRESHOLD: usize = 2048;

/// One queued batch segment for a single lane: updates in local set ids,
/// sorted and deduped (the global batch was), applied FIFO per lane so the
/// per-set element sequences match the serial [`ProbGraph::apply_batch`]
/// order exactly.
struct Segment {
    remove: bool,
    updates: Vec<(u32, u32)>,
}

/// One shard: a contiguous vertex range with its own single-writer store
/// lane and update queue.
struct Lane {
    store: SketchStore,
    sizes: Vec<u32>,
    queue: Vec<Segment>,
}

impl Lane {
    /// Applies every queued segment in arrival order, grouping per-set
    /// runs into one batched store call each — the same shape as
    /// `ProbGraph::apply_updates`, which the equivalence suite pins this
    /// path against.
    fn drain(&mut self) {
        let Lane {
            store,
            sizes,
            queue,
        } = self;
        let mut xs: Vec<u32> = Vec::new();
        for seg in queue.drain(..) {
            let mut i = 0;
            while i < seg.updates.len() {
                let s = seg.updates[i].0;
                xs.clear();
                while i < seg.updates.len() && seg.updates[i].0 == s {
                    xs.push(seg.updates[i].1);
                    i += 1;
                }
                if seg.remove {
                    store.remove_from_many(s, &xs);
                    sizes[s as usize] -= xs.len() as u32;
                } else {
                    store.insert_into_many(s, &xs);
                    sizes[s as usize] += xs.len() as u32;
                }
            }
        }
    }
}

/// The writer-side handle of the serving layer: sharded single-writer
/// ingest lanes plus the epoch cell queries read from. Mutating methods
/// take `&mut self`, so Rust's ownership rules enforce the single-writer
/// contract statically; any number of [`ServingReader`]s query published
/// epochs concurrently, lock-free.
#[derive(Debug)]
pub struct ShardedProbGraph {
    lanes: Vec<Lane>,
    /// Shard boundaries: shard `s` owns vertices `bounds[s]..bounds[s+1]`.
    bounds: Vec<u32>,
    cell: Arc<EpochCell<ProbGraph>>,
    /// Reclaimed snapshot buffers awaiting reuse (double-buffering).
    spares: Vec<ProbGraph>,
    pending: usize,
    cfg: PgConfig,
    params: SketchParams,
    /// Full per-set geometry when the lanes are degree-stratified;
    /// `None` on the uniform fast path (including collapsed specs).
    stratified: Option<StratifiedParams>,
    n: usize,
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("sets", &self.sizes.len())
            .field("queued_segments", &self.queue.len())
            .finish()
    }
}

impl ShardedProbGraph {
    /// Creates an empty sharded graph over `n_vertices` with the resolved
    /// default shard count: [`pg_parallel::current_shards`] (`PG_SHARDS`
    /// env → one lane per hardware thread), capped so each lane owns at
    /// least one cache tile ([`pg_parallel::tile_bytes`]) of sketch bytes.
    /// `base_bytes` is the CSR footprint the budget is measured against,
    /// exactly as in [`ProbGraph::stream_from`].
    pub fn new(n_vertices: usize, base_bytes: usize, cfg: &PgConfig) -> Self {
        let params = resolve_params(n_vertices, base_bytes, cfg);
        let store_bytes = store_bytes_estimate(params, n_vertices);
        let topo_cap = (store_bytes / pg_parallel::tile_bytes()).max(1);
        let shards = pg_parallel::current_shards().min(topo_cap);
        Self::with_shards(n_vertices, base_bytes, cfg, shards)
    }

    /// Creates an empty sharded graph with an explicit shard count
    /// (clamped to `[1, n_vertices]`). Sketch parameters are resolved
    /// against the **global** `n_vertices`/`base_bytes`, so every lane —
    /// and therefore every published epoch — is parameter-identical to a
    /// serial [`ProbGraph::stream_from`] over the same inputs. When `cfg`
    /// carries a [`pg_sketch::StrataSpec`], geometry is planned exactly as
    /// the serial stream plans it — against the all-zero degree array of
    /// the empty stream — so the equivalence holds stratified too; callers
    /// that know the real degree distribution up front should resolve it
    /// themselves and use [`ShardedProbGraph::with_shards_stratified`].
    pub fn with_shards(
        n_vertices: usize,
        base_bytes: usize,
        cfg: &PgConfig,
        shards: usize,
    ) -> Self {
        if cfg.strata.is_some() {
            let sparams = resolve_stratified(n_vertices, base_bytes, cfg, &vec![0u32; n_vertices]);
            return Self::with_shards_stratified(n_vertices, cfg, shards, sparams);
        }
        let params = resolve_params(n_vertices, base_bytes, cfg);
        Self::from_resolved(n_vertices, cfg, shards, params, None)
    }

    /// Creates an empty sharded graph from **already-resolved** stratified
    /// geometry — the streaming layer cannot re-derive degree ranks from
    /// an empty stream, so callers that planned against a real degree
    /// distribution (a prior epoch, a snapshot, an offline build) pass the
    /// resolved [`StratifiedParams`] in whole. `sparams.assign()` must
    /// cover exactly `n_vertices` sets. Collapsed or one-stratum geometry
    /// lowers onto the uniform lanes bit-identically.
    pub fn with_shards_stratified(
        n_vertices: usize,
        cfg: &PgConfig,
        shards: usize,
        sparams: StratifiedParams,
    ) -> Self {
        assert_eq!(
            sparams.assign().len(),
            n_vertices,
            "assignment must cover every vertex"
        );
        let sparams = sparams.collapsed();
        let params = sparams.strata()[0];
        let stratified = if sparams.is_uniform() {
            None
        } else {
            Some(sparams)
        };
        Self::from_resolved(n_vertices, cfg, shards, params, stratified)
    }

    /// Shared constructor core over resolved geometry: contiguous lane
    /// bounds, per-lane empty stores (stratified lanes slice the global
    /// assignment and share the stratum table, mirroring
    /// [`ProbGraph::build_rows_stratified`]'s row-range property), and the
    /// epoch-0 empty snapshot.
    fn from_resolved(
        n_vertices: usize,
        cfg: &PgConfig,
        shards: usize,
        params: SketchParams,
        stratified: Option<StratifiedParams>,
    ) -> Self {
        assert!(
            n_vertices <= u32::MAX as usize,
            "vertex universe exceeds u32 ids"
        );
        let shards = shards.clamp(1, n_vertices.max(1));
        let mut bounds = Vec::with_capacity(shards + 1);
        for s in 0..=shards {
            bounds.push((n_vertices * s / shards) as u32);
        }
        let empty_store = |lo: usize, hi: usize| match &stratified {
            Some(sp) => build_store_stratified(
                &StratifiedParams::new(sp.strata().to_vec(), sp.assign()[lo..hi].to_vec()),
                cfg.seed,
                |_| &[][..],
            ),
            None => build_store(params, hi - lo, cfg.seed, |_| &[][..]),
        };
        let lanes = bounds
            .windows(2)
            .map(|w| {
                let n_local = (w[1] - w[0]) as usize;
                Lane {
                    store: empty_store(w[0] as usize, w[1] as usize),
                    sizes: vec![0u32; n_local],
                    queue: Vec::new(),
                }
            })
            .collect();
        let initial = ProbGraph::from_parts(
            empty_store(0, n_vertices),
            vec![0u32; n_vertices],
            cfg.bf_estimator,
            params,
            stratified.clone(),
            cfg.seed,
        );
        ShardedProbGraph {
            lanes,
            bounds,
            cell: Arc::new(EpochCell::new(initial)),
            spares: Vec::new(),
            pending: 0,
            cfg: cfg.clone(),
            params,
            stratified,
            n: n_vertices,
        }
    }

    /// Number of vertices (= sketched sets).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the vertex universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of ingest lanes.
    #[inline]
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// The resolved sketch parameters (identical across lanes and epochs).
    /// For stratified lanes this is **stratum 0** — the widest,
    /// highest-degree stratum; see
    /// [`ShardedProbGraph::stratified_params`] for the full geometry.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// The full per-set geometry when the lanes are degree-stratified;
    /// `None` on the uniform fast path (including one-stratum and
    /// collapsed specs). Identical across lanes and published epochs.
    #[inline]
    pub fn stratified_params(&self) -> Option<&StratifiedParams> {
        self.stratified.as_ref()
    }

    /// The epoch of the latest published snapshot (0 = the initial empty
    /// graph).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Number of staged `(set, element)` updates not yet applied to lanes.
    #[inline]
    pub fn pending_updates(&self) -> usize {
        self.pending
    }

    /// True when the stored representation supports edge removals
    /// (counting Bloom).
    #[inline]
    pub fn remove_supported(&self) -> bool {
        matches!(self.params, SketchParams::CountingBloom { .. })
    }

    /// Stages a batch of new undirected edges on the per-shard queues
    /// without applying it — callers coalescing several ticks before one
    /// [`ShardedProbGraph::apply_pending`] or
    /// [`ShardedProbGraph::publish_epoch`]. Same contract as
    /// [`ProbGraph::apply_batch`]: self-loops dropped, in-batch duplicates
    /// applied once, endpoints in `0..len()`, edges not already present.
    pub fn stage_batch(&mut self, edges: &[Edge]) {
        self.enqueue(Self::undirected_updates(edges), false);
    }

    /// Directed form of [`ShardedProbGraph::stage_batch`]: each arc
    /// `(v, u)` inserts `u` into set `v` only (DAG out-neighborhood
    /// shape, as [`ProbGraph::apply_arcs`]).
    pub fn stage_arcs(&mut self, arcs: &[Edge]) {
        self.enqueue(Self::arc_updates(arcs), false);
    }

    /// Stages a batch of present undirected edges for removal. The
    /// representation must support removals (see
    /// [`ShardedProbGraph::try_remove_batch`] for the non-panicking
    /// form).
    pub fn stage_removals(&mut self, edges: &[Edge]) {
        self.check_remove_supported();
        self.enqueue(Self::undirected_updates(edges), true);
    }

    /// Absorbs a batch of new undirected edges into the shard lanes —
    /// staged, routed, and drained (in parallel across shards when the
    /// batch is large enough). The writes are visible to
    /// [`ShardedProbGraph::query_with_oracle`] and readers only after the
    /// next [`ShardedProbGraph::publish_epoch`].
    pub fn apply_batch(&mut self, edges: &[Edge]) {
        if self.pending == 0 {
            if let [(u, v)] = edges {
                // Single-edge ticks skip the sort/route machinery (only
                // safe when nothing staged would be reordered past them).
                if u != v {
                    self.insert_direct(*u, *v);
                    self.insert_direct(*v, *u);
                }
                return;
            }
        }
        self.stage_batch(edges);
        self.apply_pending();
    }

    /// Directed form of [`ShardedProbGraph::apply_batch`].
    pub fn apply_arcs(&mut self, arcs: &[Edge]) {
        if self.pending == 0 {
            if let [(v, u)] = arcs {
                if v != u {
                    self.insert_direct(*v, *u);
                }
                return;
            }
        }
        self.stage_arcs(arcs);
        self.apply_pending();
    }

    /// Removes a batch of present undirected edges — the deletion mirror
    /// of [`ShardedProbGraph::apply_batch`]. Panics unless the
    /// representation supports removals.
    pub fn remove_batch(&mut self, edges: &[Edge]) {
        self.stage_removals(edges);
        self.apply_pending();
    }

    /// Directed form of [`ShardedProbGraph::remove_batch`].
    pub fn remove_arcs(&mut self, arcs: &[Edge]) {
        self.check_remove_supported();
        self.enqueue(Self::arc_updates(arcs), true);
        self.apply_pending();
    }

    /// Non-panicking form of [`ShardedProbGraph::remove_batch`]: refuses
    /// the whole batch when the representation is not invertible, leaving
    /// lanes and queues untouched.
    pub fn try_remove_batch(&mut self, edges: &[Edge]) -> Result<(), UnsupportedOperation> {
        if !self.remove_supported() {
            return Err(UnsupportedOperation::removal());
        }
        self.remove_batch(edges);
        Ok(())
    }

    /// Non-panicking form of [`ShardedProbGraph::remove_arcs`].
    pub fn try_remove_arcs(&mut self, arcs: &[Edge]) -> Result<(), UnsupportedOperation> {
        if !self.remove_supported() {
            return Err(UnsupportedOperation::removal());
        }
        self.remove_arcs(arcs);
        Ok(())
    }

    /// Drains every per-shard queue into its lane. Lanes with enough
    /// pending work are drained in parallel — one worker per lane (the
    /// single-writer contract), scheduled by the `pg-parallel` pool.
    pub fn apply_pending(&mut self) {
        if self.pending == 0 {
            return;
        }
        let parallel = self.pending >= PARALLEL_DRAIN_THRESHOLD
            && self.lanes.iter().filter(|l| !l.queue.is_empty()).count() > 1
            && pg_parallel::current_threads() > 1;
        self.pending = 0;
        if !parallel {
            for lane in &mut self.lanes {
                if !lane.queue.is_empty() {
                    lane.drain();
                }
            }
            return;
        }
        struct SendPtr<T>(*mut T);
        unsafe impl<T> Send for SendPtr<T> {}
        unsafe impl<T> Sync for SendPtr<T> {}
        let base = SendPtr(self.lanes.as_mut_ptr());
        let base = &base;
        pg_parallel::parallel_for_grain(self.lanes.len(), 1, |s| {
            // SAFETY: the dynamic scheduler claims each index exactly
            // once, so lane `s` has exactly one writer for the duration of
            // the region — disjoint &mut access.
            let lane = unsafe { &mut *base.0.add(s) };
            lane.drain();
        });
    }

    /// Applies anything still staged, gathers the lanes into one snapshot
    /// (per-collection memcpy concatenation — shards are contiguous
    /// vertex ranges), and publishes it as the next epoch. Returns the new
    /// epoch number. Reclaimed older snapshots are kept as buffers, so
    /// steady-state publishes allocate nothing.
    pub fn publish_epoch(&mut self) -> u64 {
        self.apply_pending();
        let mut snap = self.spares.pop().unwrap_or_else(|| {
            // An empty 0-set buffer: `gather_into` grows it to size once
            // (adopting the lanes' stratum tables when stratified), after
            // which it cycles through the double buffer at capacity.
            ProbGraph::from_parts(
                build_store(self.params, 0, self.cfg.seed, |_| &[][..]),
                Vec::new(),
                self.cfg.bf_estimator,
                self.params,
                self.stratified.clone(),
                self.cfg.seed,
            )
        });
        {
            let (store, sizes) = snap.parts_mut();
            let parts: Vec<&SketchStore> = self.lanes.iter().map(|l| &l.store).collect();
            gather_store_into(store, &parts);
            sizes.clear();
            for lane in &self.lanes {
                sizes.extend_from_slice(&lane.sizes);
            }
        }
        let (epoch, mut reclaimed) = self.cell.publish(snap);
        self.spares.append(&mut reclaimed);
        epoch
    }

    /// Pins the latest published epoch and runs `visitor` against its
    /// resolved [`crate::oracle::IntersectionOracle`] — the same
    /// monomorphized row-sweep entry point as [`ProbGraph::with_oracle`].
    /// Staged or applied-but-unpublished writes are **not** visible;
    /// publish an epoch first.
    pub fn query_with_oracle<V: OracleVisitor>(&self, visitor: V) -> V::Output {
        self.cell.pin().with_oracle(visitor)
    }

    /// Pins the latest published snapshot for direct read access. The
    /// guard dereferences to an ordinary [`ProbGraph`].
    pub fn snapshot(&self) -> EpochGuard<'_, ProbGraph> {
        self.cell.pin()
    }

    /// A cloneable, `Send` reader handle over the epoch cell. Readers
    /// outlive nothing: they keep the cell alive via `Arc` and pin
    /// epochs lock-free from any thread.
    pub fn reader(&self) -> ServingReader {
        ServingReader {
            cell: Arc::clone(&self.cell),
        }
    }

    /// Routes one `(set, element)` insert straight to its lane — the
    /// live-tick fast path (no allocation, no sort, no fork/join).
    fn insert_direct(&mut self, set: VertexId, x: u32) {
        let lane_idx = self.lane_of(set);
        let local = set - self.bounds[lane_idx];
        let lane = &mut self.lanes[lane_idx];
        lane.store.insert_into(local, x);
        lane.sizes[local as usize] += 1;
    }

    /// The shard owning vertex `v`.
    #[inline]
    fn lane_of(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.n, "vertex {v} outside 0..{}", self.n);
        self.bounds.partition_point(|&b| b <= v) - 1
    }

    /// Sorts, dedups, and routes a global update batch onto the per-shard
    /// queues. The global sort+dedup is exactly `ProbGraph::apply_updates`'
    /// preprocessing; contiguous shard ranges make the per-lane slices
    /// contiguous runs of the sorted batch.
    fn enqueue(&mut self, mut updates: Vec<(VertexId, u32)>, remove: bool) {
        updates.sort_unstable();
        updates.dedup();
        if updates.is_empty() {
            return;
        }
        self.pending += updates.len();
        let mut start = 0usize;
        for s in 0..self.lanes.len() {
            let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
            debug_assert!(updates[start..].iter().all(|&(v, _)| v >= lo || start == 0));
            let end = start
                + updates[start..]
                    .iter()
                    .position(|&(v, _)| v >= hi)
                    .unwrap_or(updates.len() - start);
            if end > start {
                self.lanes[s].queue.push(Segment {
                    remove,
                    updates: updates[start..end]
                        .iter()
                        .map(|&(v, x)| (v - lo, x))
                        .collect(),
                });
            }
            start = end;
            if start == updates.len() {
                break;
            }
        }
        debug_assert_eq!(start, updates.len(), "update outside the vertex universe");
    }

    fn check_remove_supported(&self) {
        assert!(
            self.remove_supported(),
            "this representation does not support removals \
             (remove_supported() == false); use Representation::CountingBloom"
        );
    }

    /// Expands undirected edges into `(set, element)` updates, dropping
    /// self-loops (mirrors `ProbGraph::undirected_updates`).
    fn undirected_updates(edges: &[Edge]) -> Vec<(VertexId, u32)> {
        let mut updates = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u != v {
                updates.push((u, v));
                updates.push((v, u));
            }
        }
        updates
    }

    /// Keeps arcs as they are, dropping self-loops.
    fn arc_updates(arcs: &[Edge]) -> Vec<(VertexId, u32)> {
        arcs.iter().copied().filter(|&(v, u)| v != u).collect()
    }
}

/// A cloneable, `Send + Sync` query handle: pins published epochs
/// lock-free and runs row sweeps against them from any thread, while the
/// single writer keeps ingesting.
#[derive(Clone, Debug)]
pub struct ServingReader {
    cell: Arc<EpochCell<ProbGraph>>,
}

impl ServingReader {
    /// The epoch of the latest published snapshot.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Pins the latest published snapshot. The guard dereferences to an
    /// ordinary [`ProbGraph`] and exposes the epoch it was published at;
    /// hold it only as long as the query runs — pinned epochs keep retired
    /// snapshots in limbo.
    pub fn snapshot(&self) -> EpochGuard<'_, ProbGraph> {
        self.cell.pin()
    }

    /// Pins the latest epoch and runs `visitor` against its resolved
    /// oracle — one pin per call, the steady-state query entry point.
    pub fn query_with_oracle<V: OracleVisitor>(&self, visitor: V) -> V::Output {
        self.cell.pin().with_oracle(visitor)
    }
}

/// Rough sketch-store footprint for `params` over `n` sets — used only to
/// cap the default shard count against the cache-tile budget, so it can
/// stay an estimate (word-granularity rounding ignored).
fn store_bytes_estimate(params: SketchParams, n: usize) -> usize {
    let per_set = match params {
        SketchParams::Bloom { bits_per_set, .. } => bits_per_set.div_ceil(8),
        // View bits plus 4-bit counters per bucket.
        SketchParams::CountingBloom { bits_per_set, .. } => {
            bits_per_set.div_ceil(8) + bits_per_set.div_ceil(2)
        }
        SketchParams::KHash { k } => 4 * k,
        // Element + hash arrays, both u32, at capacity k.
        SketchParams::OneHash { k } => 8 * k,
        SketchParams::Kmv { k } => 8 * k,
        SketchParams::Hll { precision } => 1usize << precision,
    };
    per_set.saturating_mul(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::Representation;
    use pg_graph::gen;

    fn all_reps() -> Vec<Representation> {
        vec![
            Representation::Bloom { b: 2 },
            Representation::CountingBloom { b: 2 },
            Representation::KHash,
            Representation::OneHash,
            Representation::Kmv,
            Representation::Hll,
        ]
    }

    #[test]
    fn epoch_zero_is_the_empty_graph() {
        let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.3);
        let srv = ShardedProbGraph::with_shards(100, 4096, &cfg, 4);
        assert_eq!(srv.epoch(), 0);
        assert_eq!(srv.shards(), 4);
        let snap = srv.snapshot();
        assert_eq!(snap.len(), 100);
        assert_eq!(snap.sizes().iter().sum::<u32>(), 0);
    }

    #[test]
    fn writes_invisible_until_publish() {
        let g = gen::kronecker(7, 8, 3);
        let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.3);
        let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 3);
        srv.apply_batch(&g.edge_list());
        assert_eq!(srv.snapshot().sizes().iter().sum::<u32>(), 0);
        let e = srv.publish_epoch();
        assert_eq!(e, 1);
        assert_eq!(
            srv.snapshot().sizes().iter().sum::<u32>() as usize,
            2 * g.num_edges()
        );
    }

    #[test]
    fn published_epoch_matches_serial_stream_for_every_representation() {
        let g = gen::erdos_renyi_gnm(90, 700, 17);
        let edges = g.edge_list();
        for rep in all_reps() {
            let cfg = PgConfig::new(rep, 0.3);
            let serial = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &edges);
            for shards in [1usize, 2, 5] {
                let mut srv =
                    ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, shards);
                // Mixed batch sizes, including the single-edge fast path.
                let (first, rest) = edges.split_first().unwrap();
                srv.apply_batch(std::slice::from_ref(first));
                for chunk in rest.chunks(97) {
                    srv.apply_batch(chunk);
                }
                srv.publish_epoch();
                let snap = srv.snapshot();
                assert_eq!(snap.params(), serial.params(), "{rep:?}/{shards}");
                assert_eq!(snap.sizes(), serial.sizes(), "{rep:?}/{shards}");
                for (u, v) in g.edges().take(200) {
                    assert_eq!(
                        snap.estimate_intersection(u, v),
                        serial.estimate_intersection(u, v),
                        "{rep:?}/{shards} ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn published_stratified_epoch_matches_serial_stream_for_every_representation() {
        use pg_sketch::StrataSpec;
        let g = gen::erdos_renyi_gnm(800, 24_000, 3);
        let edges = g.edge_list();
        for rep in all_reps() {
            let cfg = PgConfig::stratified(rep, 0.3, StrataSpec::skewed_default());
            let serial = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &edges);
            for shards in [1usize, 3] {
                let mut srv =
                    ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, shards);
                assert_eq!(
                    srv.stratified_params(),
                    serial.stratified_params(),
                    "{rep:?}/{shards}"
                );
                assert!(
                    srv.stratified_params().is_some(),
                    "{rep:?}: budget collapsed to uniform; the test covers nothing"
                );
                let (first, rest) = edges.split_first().unwrap();
                srv.apply_batch(std::slice::from_ref(first));
                for chunk in rest.chunks(977) {
                    srv.apply_batch(chunk);
                }
                srv.publish_epoch();
                let snap = srv.snapshot();
                assert_eq!(snap.params(), serial.params(), "{rep:?}/{shards}");
                assert_eq!(
                    snap.stratified_params(),
                    serial.stratified_params(),
                    "{rep:?}/{shards}"
                );
                assert_eq!(snap.sizes(), serial.sizes(), "{rep:?}/{shards}");
                for (u, v) in g.edges().take(200) {
                    assert_eq!(
                        snap.estimate_intersection(u, v),
                        serial.estimate_intersection(u, v),
                        "{rep:?}/{shards} ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn resolved_stratified_geometry_streams_like_build_rows() {
        use pg_sketch::StrataSpec;
        let g = gen::erdos_renyi_gnm(800, 24_000, 3);
        let edges = g.edge_list();
        let cfg = PgConfig::stratified(
            Representation::Bloom { b: 2 },
            0.3,
            StrataSpec::skewed_default(),
        );
        // Resolve against the *real* degree distribution — the case the
        // streaming layer cannot derive on its own.
        let offline = ProbGraph::build(&g, &cfg);
        let sp = offline
            .stratified_params()
            .expect("budget collapsed to uniform")
            .clone();
        let mut serial = ProbGraph::build_rows_stratified(
            g.num_vertices(),
            sp.clone(),
            cfg.bf_estimator,
            cfg.seed,
            |_| &[][..],
        );
        serial.apply_batch(&edges);
        let mut srv =
            ShardedProbGraph::with_shards_stratified(g.num_vertices(), &cfg, 4, sp.clone());
        assert_eq!(srv.stratified_params(), Some(&sp));
        for chunk in edges.chunks(511) {
            srv.apply_batch(chunk);
        }
        srv.publish_epoch();
        let snap = srv.snapshot();
        assert_eq!(snap.stratified_params(), Some(&sp));
        assert_eq!(snap.sizes(), serial.sizes());
        for (u, v) in g.edges().take(300) {
            assert_eq!(
                snap.estimate_intersection(u, v),
                serial.estimate_intersection(u, v),
                "({u},{v})"
            );
        }
    }

    #[test]
    fn one_stratum_geometry_lowers_onto_uniform_lanes() {
        let cfg = PgConfig::new(Representation::Kmv, 0.3);
        let params = crate::pg::resolve_params(100, 4096, &cfg);
        let sp = StratifiedParams::new(vec![params], vec![0u8; 100]);
        let srv = ShardedProbGraph::with_shards_stratified(100, &cfg, 3, sp);
        assert!(srv.stratified_params().is_none());
        assert_eq!(srv.params(), params);
        assert!(srv.snapshot().stratified_params().is_none());
    }

    #[test]
    fn stratified_spares_recycle_with_geometry_intact() {
        use pg_sketch::StrataSpec;
        let g = gen::erdos_renyi_gnm(400, 9_000, 11);
        let cfg = PgConfig::stratified(Representation::Hll, 0.3, StrataSpec::skewed_default());
        let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 2);
        assert!(srv.stratified_params().is_some());
        for chunk in g.edge_list().chunks(1024) {
            srv.apply_batch(chunk);
            srv.publish_epoch();
            assert_eq!(
                srv.snapshot().stratified_params(),
                srv.stratified_params(),
                "published geometry drifted from the lanes'"
            );
        }
        assert!(srv.spares.len() <= 2, "spares {}", srv.spares.len());
    }

    #[test]
    fn staged_batches_coalesce_and_preserve_order() {
        let g = gen::erdos_renyi_gnm(60, 400, 5);
        let edges = g.edge_list();
        let cfg = PgConfig::new(Representation::CountingBloom { b: 2 }, 0.3);
        let mut serial = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &[]);
        let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 4);
        let (ins, del) = edges.split_at(edges.len() / 2);
        serial.apply_batch(ins);
        serial.apply_batch(del);
        serial.remove_batch(del);
        srv.stage_batch(ins);
        srv.stage_batch(del);
        srv.stage_removals(del);
        assert!(srv.pending_updates() > 0);
        srv.publish_epoch();
        assert_eq!(srv.pending_updates(), 0);
        let snap = srv.snapshot();
        assert_eq!(snap.sizes(), serial.sizes());
        for (u, v) in g.edges().take(200) {
            assert_eq!(
                snap.estimate_intersection(u, v),
                serial.estimate_intersection(u, v)
            );
        }
    }

    #[test]
    fn arcs_route_to_source_sets_only() {
        let g = gen::erdos_renyi_gnm(50, 250, 3);
        let dag = pg_graph::orient_by_degree(&g);
        let arcs: Vec<Edge> = (0..dag.num_vertices() as u32)
            .flat_map(|v| dag.neighbors_plus(v).iter().map(move |&u| (v, u)))
            .collect();
        let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.3);
        let mut serial = ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &[]);
        serial.apply_arcs(&arcs);
        let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 3);
        srv.apply_arcs(&arcs);
        srv.publish_epoch();
        let snap = srv.snapshot();
        assert_eq!(snap.sizes(), serial.sizes());
    }

    #[test]
    fn spares_recycle_after_a_few_epochs() {
        let g = gen::kronecker(6, 6, 1);
        let cfg = PgConfig::new(Representation::Hll, 0.3);
        let mut srv = ShardedProbGraph::with_shards(g.num_vertices(), g.memory_bytes(), &cfg, 2);
        for chunk in g.edge_list().chunks(16) {
            srv.apply_batch(chunk);
            srv.publish_epoch();
        }
        // With no readers pinning, each publish reclaims the previous
        // snapshot: the double buffer never grows past a couple of spares.
        assert!(srv.spares.len() <= 2, "spares {}", srv.spares.len());
    }

    #[test]
    fn try_removals_refuse_on_non_invertible_stores() {
        let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.3);
        let mut srv = ShardedProbGraph::with_shards(20, 1024, &cfg, 2);
        srv.apply_batch(&[(0, 1)]);
        assert!(srv.try_remove_batch(&[(0, 1)]).is_err());
        assert!(srv.try_remove_arcs(&[(0, 1)]).is_err());
        assert!(!srv.remove_supported());
    }

    #[test]
    #[should_panic(expected = "does not support removals")]
    fn staged_removals_panic_loudly_on_plain_bloom() {
        let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.3);
        let mut srv = ShardedProbGraph::with_shards(20, 1024, &cfg, 2);
        srv.stage_removals(&[(0, 1)]);
    }

    #[test]
    fn default_shard_count_is_topology_capped() {
        let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.25);
        // A tiny store cannot usefully split across many lanes.
        let tiny = ShardedProbGraph::new(16, 512, &cfg);
        assert_eq!(tiny.shards(), 1);
        // An explicit override is honored exactly (clamped to n).
        pg_parallel::with_shards(5, || {
            let srv = ShardedProbGraph::with_shards(100, 4096, &cfg, pg_parallel::current_shards());
            assert_eq!(srv.shards(), 5);
        });
    }

    #[test]
    fn empty_universe_serves_empty_snapshots() {
        let cfg = PgConfig::new(Representation::Kmv, 0.2);
        let mut srv = ShardedProbGraph::with_shards(0, 0, &cfg, 4);
        assert_eq!(srv.shards(), 1);
        assert!(srv.is_empty());
        srv.publish_epoch();
        assert!(srv.snapshot().is_empty());
    }
}
