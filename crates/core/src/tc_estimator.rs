//! The §VII triangle-count estimators and their Theorem VII.1 bounds.
//!
//! `T̂C_⋆ = ⅓ · Σ_{(u,v)∈E} |N_u ∩ N_v|̂_⋆` — the sum runs over *full*
//! neighborhoods of adjacent pairs (each triangle contributes one common
//! neighbor to each of its three edges, hence the ⅓). This is the
//! theory-grade estimator of Table VII (the node-iterator PG algorithm of
//! Listing 1 is the systems-grade one; both are exposed).

use crate::oracle::{IntersectionOracle, OracleVisitor};
use crate::pg::ProbGraph;
use pg_graph::{CsrGraph, VertexId};
use pg_parallel::{map_reduce, map_reduce_scratch, weighted_grain};

/// The single edge-sum kernel, generic over the oracle: edges are grouped
/// by source vertex (every edge appears once in the source's forward run),
/// and each source row is batched through
/// [`IntersectionOracle::estimate_row`] into worker-local scratch — the
/// source-side sketch state is pinned once per vertex instead of being
/// re-fetched (and the representation re-dispatched) per edge.
///
/// When the oracle's destinations tile ([`crate::grain::plan_for`]), the
/// sweep reroutes through the blocked source-batch × destination-tile
/// traversal: per-edge estimates are bit-identical either way, only the
/// `f64` summation order changes (as it already does across thread
/// counts).
pub fn tc_estimate_with<O: IntersectionOracle>(g: &CsrGraph, oracle: &O) -> f64 {
    let n = g.num_vertices();
    if let Some(plan) = crate::grain::plan_for(oracle, n) {
        let sum = crate::grain::tiled_block_sweep(
            n,
            n,
            oracle,
            &plan,
            crate::grain::BlockKind::Estimate,
            |u| g.forward_neighbors(u),
            || 0f64,
            |acc, _u, _lo, _dests, vals| acc + vals.iter().fold(0.0f64, |s, &e| s + e.max(0.0)),
            |a, b| a + b,
        );
        return sum / 3.0;
    }
    let (total_fwd, max_fwd) = map_reduce(
        n,
        || (0u64, 0u64),
        |(sum, max), v| {
            let f = g.forward_neighbors(v as VertexId).len() as u64;
            (sum + f, max.max(f))
        },
        |(s1, m1), (s2, m2)| (s1 + s2, m1.max(m2)),
    );
    map_reduce_scratch(
        n,
        weighted_grain(n, total_fwd, max_fwd),
        || 0f64,
        Vec::new,
        |row, acc, ui| {
            let u = ui as VertexId;
            let fwd = g.forward_neighbors(u);
            if fwd.is_empty() {
                return acc;
            }
            oracle.estimate_row(u, fwd, row);
            acc + row.iter().fold(0.0f64, |s, &e| s + e.max(0.0))
        },
        |a, b| a + b,
    ) / 3.0
}

/// `T̂C_⋆` with the estimator configured in `pg` (which must sketch the
/// **full** neighborhoods of `g`, i.e. come from [`ProbGraph::build`]) —
/// representation resolved once, then the generic row-batched kernel.
pub fn tc_estimate(g: &CsrGraph, pg: &ProbGraph) -> f64 {
    struct V<'a>(&'a CsrGraph);
    impl OracleVisitor for V<'_> {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            tc_estimate_with(self.0, o)
        }
    }
    pg.with_oracle(V(g))
}

/// Exact `TC` via the same edge-sum identity (useful to validate the
/// identity itself against the node-iterator count): the generic kernel
/// with the exact oracle. All summands are integers, so the `f64`
/// accumulator — and the division by the (exactly represented) factor 3
/// of the tripled count — is exact for every count below `2^53`.
pub fn tc_exact_edge_sum(g: &CsrGraph) -> u64 {
    tc_estimate_with(g, &crate::oracle::ExactOracle::new(g)) as u64
}

/// Theorem VII.1 bound instantiation for a concrete graph: the probability
/// bound `P[|TC − T̂C| ≥ t]` for each representation, evaluated from graph
/// quantities (`m`, Δ, Σd², Σd³).
#[derive(Clone, Copy, Debug)]
pub struct TcBounds {
    m: usize,
    max_degree: usize,
    sum_deg_sq: u64,
    sum_deg_cu: u64,
}

impl TcBounds {
    /// Precomputes the graph quantities the bounds need.
    pub fn for_graph(g: &CsrGraph) -> TcBounds {
        TcBounds {
            m: g.num_edges(),
            max_degree: g.max_degree(),
            sum_deg_sq: g.sum_degree_squares(),
            sum_deg_cu: g.sum_degree_cubes(),
        }
    }

    /// BF case of Theorem VII.1 (`∞` outside the validity regime).
    pub fn bloom(&self, bits: usize, b: usize, t: f64) -> f64 {
        pg_stats::tc_bf_concentration_bound(self.m, self.max_degree, bits, b, t)
    }

    /// MinHash case (plain, both 1-hash and k-hash).
    pub fn minhash(&self, k: usize, t: f64) -> f64 {
        pg_stats::tc_mh_concentration_bound(k, t, self.sum_deg_sq)
    }

    /// MinHash case, Vizing-refined variant.
    pub fn minhash_refined(&self, k: usize, t: f64) -> f64 {
        pg_stats::tc_mh_concentration_bound_refined(k, t, self.max_degree, self.sum_deg_cu)
    }

    /// The tighter of the two MinHash bounds at deviation `t`.
    pub fn minhash_best(&self, k: usize, t: f64) -> f64 {
        self.minhash(k, t).min(self.minhash_refined(k, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::triangles;
    use crate::pg::{PgConfig, Representation};
    use pg_graph::gen;

    #[test]
    fn edge_sum_identity_matches_node_iterator() {
        for g in [
            gen::complete(12),
            gen::kronecker(8, 8, 3),
            gen::erdos_renyi_gnm(100, 1500, 5),
            gen::grid(7, 7),
        ] {
            assert_eq!(tc_exact_edge_sum(&g), triangles::count_exact(&g));
        }
    }

    #[test]
    fn estimator_tracks_truth_on_dense_graph() {
        let g = gen::erdos_renyi_gnm(300, 300 * 25, 3);
        let exact = triangles::count_exact(&g) as f64;
        for rep in [
            Representation::Bloom { b: 2 },
            Representation::KHash,
            Representation::OneHash,
        ] {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.33));
            let est = tc_estimate(&g, &pg);
            let rel = est / exact;
            // Order-of-magnitude sanity (BF AND overestimates on dense
            // graphs, §VIII-B); precise accuracy lives in the benches.
            assert!((0.3..2.5).contains(&rel), "{rep:?}: rel={rel}");
        }
    }

    #[test]
    fn kmv_estimator_needs_more_budget_for_same_accuracy() {
        // KMV stores 8-byte hashes, so at equal budget it gets half the
        // slots of 1-hash and much higher variance (§IX is a design sketch,
        // not an evaluated configuration). At a generous budget it tracks.
        let g = gen::erdos_renyi_gnm(300, 300 * 25, 3);
        let exact = triangles::count_exact(&g) as f64;
        let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Kmv, 1.0));
        let rel = tc_estimate(&g, &pg) / exact;
        assert!((0.5..2.0).contains(&rel), "rel={rel}");
    }

    #[test]
    fn bounds_are_probabilities_and_monotone_in_t() {
        let g = gen::kronecker(9, 8, 2);
        let b = TcBounds::for_graph(&g);
        let exact = triangles::count_exact(&g) as f64;
        let mut prev = f64::INFINITY;
        for mult in [0.5, 1.0, 2.0, 4.0] {
            let t = exact.max(1.0) * mult;
            let p = b.minhash(64, t);
            assert!((0.0..=1.0).contains(&p));
            assert!(p <= prev);
            prev = p;
        }
        // Refined/best bound never worse than what it refines at any t.
        let t = exact.max(1.0);
        assert!(b.minhash_best(64, t) <= b.minhash(64, t));
        assert!(b.minhash_best(64, t) <= b.minhash_refined(64, t));
    }

    #[test]
    fn bf_bound_regime_detection() {
        let g = gen::complete(50); // Δ = 49
        let b = TcBounds::for_graph(&g);
        // Tiny filter: regime violated -> infinite (vacuous) bound.
        assert_eq!(b.bloom(64, 4, 100.0), f64::INFINITY);
        // Large filter: finite.
        assert!(b.bloom(1 << 16, 1, 1e9).is_finite());
    }

    #[test]
    fn mh_bound_empirically_holds() {
        // Monte-Carlo check of Theorem VII.1 (MinHash): the observed
        // deviation frequency at threshold t must not exceed the bound
        // (within sampling noise).
        let g = gen::erdos_renyi_gnm(120, 2400, 8);
        let exact = triangles::count_exact(&g) as f64;
        let bounds = TcBounds::for_graph(&g);
        let k = 64;
        let t = 0.5 * exact;
        let trials = 24;
        let mut violations = 0;
        for seed in 0..trials {
            let cfg = PgConfig::new(Representation::KHash, 0.33).with_seed(seed as u64);
            // Force k by building with enough budget, then bound with the
            // actual k used.
            let pg = ProbGraph::build(&g, &cfg);
            let est = tc_estimate(&g, &pg);
            if (est - exact).abs() >= t {
                violations += 1;
            }
            let _ = k;
        }
        let k_actual =
            match ProbGraph::build(&g, &PgConfig::new(Representation::KHash, 0.33)).params() {
                pg_sketch::SketchParams::KHash { k } => k,
                _ => unreachable!(),
            };
        let bound = bounds.minhash(k_actual, t);
        let freq = violations as f64 / trials as f64;
        assert!(
            freq <= bound + 0.2,
            "violation frequency {freq} exceeds bound {bound}"
        );
    }
}
