//! The ProbGraph representation (§V of the paper).
//!
//! A [`ProbGraph`] is a collection of probabilistic sketches, one per
//! vertex set (full neighborhoods `N_v`, or oriented out-neighborhoods
//! `N⁺_v` for the clique algorithms), built under a storage budget
//! `s ∈ [0, 1]` relative to the CSR footprint. The user picks a
//! [`Representation`] and, for Bloom filters, a [`BfEstimator`]; the paper
//! shows no single choice wins everywhere (§VIII-B).

use crate::oracle::{
    BloomAnd, BloomLimit, BloomOr, BloomOracle, HllOracle, IntersectionOracle, KHashOracle,
    KmvOracle, MutableOracle, OneHashOracle, OracleVisitor, UnsupportedOperation,
};
use pg_graph::{CsrGraph, OrientedDag, VertexId};
use pg_sketch::{
    BloomCollection, BloomCollectionIn, BottomKCollection, BottomKCollectionIn, BudgetPlan,
    CountingBloomCollection, CountingBloomCollectionIn, HyperLogLogCollection,
    HyperLogLogCollectionIn, KmvCollection, KmvCollectionIn, MinHashCollection,
    MinHashCollectionIn, SketchParams, StrataSpec, StratifiedParams, StratifiedPlan,
};
use std::borrow::Cow;

/// Which probabilistic set representation backs the ProbGraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Representation {
    /// Bloom filters with `b` hash functions (§IV-B).
    Bloom {
        /// Number of hash functions; the paper finds `b ∈ {1, 2}` best.
        b: usize,
    },
    /// Counting Bloom filters with `b` hash functions — the same derived
    /// read view (and estimators) as [`Representation::Bloom`], with
    /// per-bucket saturating counters paying for a real deletion path
    /// ([`crate::oracle::MutableOracle::remove_edge`] /
    /// [`ProbGraph::remove_batch`]). The counter width is charged against
    /// the storage budget, so a counting filter gets ~5× fewer buckets
    /// than a plain one at the same `s`.
    CountingBloom {
        /// Number of hash functions, as for [`Representation::Bloom`].
        b: usize,
    },
    /// k-hash MinHash (§IV-C) — the MLE estimator with exponential bounds.
    KHash,
    /// 1-hash / bottom-k MinHash (§IV-D) — cheapest construction.
    OneHash,
    /// K-Minimum-Values (§IX).
    Kmv,
    /// HyperLogLog (§X's "beyond BF and MH" extension).
    Hll,
}

/// Which Bloom-filter intersection estimator to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BfEstimator {
    /// `|X∩Y|̂_AND` (Eq. 2) — the paper's default.
    #[default]
    And,
    /// `|X∩Y|̂_L` (Eq. 4) — better on very dense graphs (§VIII-B).
    Limit,
    /// `|X∩Y|̂_OR` (Eq. 29) — the prior-work estimator, for comparison.
    Or,
}

/// Configuration for [`ProbGraph::build`] — mirrors
/// `ProbGraph(g, BF, 0.25)` from Listing 6.
#[derive(Clone, Debug)]
pub struct PgConfig {
    /// The chosen representation.
    pub representation: Representation,
    /// Storage budget `s ∈ [0, 1]` as a fraction of the CSR bytes (§V-A).
    pub budget: f64,
    /// Master RNG seed for all hash functions.
    pub seed: u64,
    /// Bloom estimator variant (ignored for MinHash/KMV).
    pub bf_estimator: BfEstimator,
    /// Degree-stratification spec: `Some` resolves the budget per degree
    /// quantile ([`StratifiedPlan`]) so heavy-tail vertices get wider
    /// sketches under the **same total budget**; `None` (the default)
    /// keeps the uniform geometry. A one-stratum spec resolves
    /// bit-identically to `None`.
    pub strata: Option<StrataSpec>,
}

impl PgConfig {
    /// A configuration with the default seed and the AND estimator.
    pub fn new(representation: Representation, budget: f64) -> Self {
        PgConfig {
            representation,
            budget,
            seed: 0xC0FF_EE00,
            bf_estimator: BfEstimator::And,
            strata: None,
        }
    }

    /// A degree-stratified configuration: the same total budget as
    /// [`PgConfig::new`], split per degree quantile according to `spec`
    /// (see [`StrataSpec::skewed_default`] for the paper-motivated
    /// heavy-tail split).
    pub fn stratified(representation: Representation, budget: f64, spec: StrataSpec) -> Self {
        Self::new(representation, budget).with_strata(spec)
    }

    /// Overrides the hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the Bloom estimator variant.
    pub fn with_bf_estimator(mut self, e: BfEstimator) -> Self {
        self.bf_estimator = e;
        self
    }

    /// Overrides the stratification spec.
    pub fn with_strata(mut self, spec: StrataSpec) -> Self {
        self.strata = Some(spec);
        self
    }
}

/// An undirected edge, as consumed by [`ProbGraph::apply_batch`].
pub type Edge = (VertexId, VertexId);

/// The per-set sketches backing a [`ProbGraph`]. The lifetime tracks
/// copy-on-write backing storage: an owned store ([`SketchStore`], the
/// `'static` alias) carries its arrays in `Vec`s, while a borrowed one
/// serves a validated snapshot buffer in place (the zero-copy load path,
/// [`crate::snapshot::ProbGraphIn`] borrowing semantics).
#[derive(Clone, Debug)]
pub enum SketchStoreIn<'a> {
    /// Flat Bloom filters.
    Bloom(BloomCollectionIn<'a>),
    /// Counting Bloom filters (packed counters + derived Bloom view).
    CountingBloom(CountingBloomCollectionIn<'a>),
    /// Flat k-hash signatures.
    KHash(MinHashCollectionIn<'a>),
    /// Flat bottom-k samples.
    OneHash(BottomKCollectionIn<'a>),
    /// KMV sketches.
    Kmv(KmvCollectionIn<'a>),
    /// HyperLogLog register arrays.
    Hll(HyperLogLogCollectionIn<'a>),
}

/// The owned (`'static`) form of [`SketchStoreIn`].
pub type SketchStore = SketchStoreIn<'static>;

impl<'a> SketchStoreIn<'a> {
    /// Detaches the store from any borrowed snapshot buffer, cloning the
    /// backing arrays if they were served in place. No-op for owned data.
    pub fn into_owned(self) -> SketchStore {
        match self {
            SketchStoreIn::Bloom(c) => SketchStoreIn::Bloom(c.into_owned()),
            SketchStoreIn::CountingBloom(c) => SketchStoreIn::CountingBloom(c.into_owned()),
            SketchStoreIn::KHash(c) => SketchStoreIn::KHash(c.into_owned()),
            SketchStoreIn::OneHash(c) => SketchStoreIn::OneHash(c.into_owned()),
            SketchStoreIn::Kmv(c) => SketchStoreIn::Kmv(c.into_owned()),
            SketchStoreIn::Hll(c) => SketchStoreIn::Hll(c.into_owned()),
        }
    }
}

/// Gathers per-part stores into `target` by concatenation, reusing
/// `target`'s allocations (the serving layer's double-buffer publish path
/// and the exchange layer's combined-store assembly both route here — the
/// **one** place the six-way gather dispatch lives). Panics if the parts'
/// representations disagree with `target`'s.
pub(crate) fn gather_store_into(target: &mut SketchStore, parts: &[&SketchStoreIn<'_>]) {
    match target {
        SketchStoreIn::Bloom(dst) => {
            let srcs: Vec<_> = parts
                .iter()
                .map(|p| match p {
                    SketchStoreIn::Bloom(c) => c,
                    _ => panic!("gather: mixed representations"),
                })
                .collect();
            dst.gather_into(&srcs);
        }
        SketchStoreIn::CountingBloom(dst) => {
            let srcs: Vec<_> = parts
                .iter()
                .map(|p| match p {
                    SketchStoreIn::CountingBloom(c) => c,
                    _ => panic!("gather: mixed representations"),
                })
                .collect();
            dst.gather_into(&srcs);
        }
        SketchStoreIn::KHash(dst) => {
            let srcs: Vec<_> = parts
                .iter()
                .map(|p| match p {
                    SketchStoreIn::KHash(c) => c,
                    _ => panic!("gather: mixed representations"),
                })
                .collect();
            dst.gather_into(&srcs);
        }
        SketchStoreIn::OneHash(dst) => {
            let srcs: Vec<_> = parts
                .iter()
                .map(|p| match p {
                    SketchStoreIn::OneHash(c) => c,
                    _ => panic!("gather: mixed representations"),
                })
                .collect();
            dst.gather_into(&srcs);
        }
        SketchStoreIn::Kmv(dst) => {
            let srcs: Vec<_> = parts
                .iter()
                .map(|p| match p {
                    SketchStoreIn::Kmv(c) => c,
                    _ => panic!("gather: mixed representations"),
                })
                .collect();
            dst.gather_into(&srcs);
        }
        SketchStoreIn::Hll(dst) => {
            let srcs: Vec<_> = parts
                .iter()
                .map(|p| match p {
                    SketchStoreIn::Hll(c) => c,
                    _ => panic!("gather: mixed representations"),
                })
                .collect();
            dst.gather_into(&srcs);
        }
    }
}

/// The probabilistic graph representation: one sketch per vertex set plus
/// the exact set sizes (degrees are free in CSR, and the MinHash/OR
/// estimators use them). Like [`SketchStoreIn`], the lifetime tracks
/// copy-on-write backing storage; the owned alias [`ProbGraph`] is the
/// ordinary built form, a borrowed graph serves a snapshot buffer in
/// place.
#[derive(Clone, Debug)]
pub struct ProbGraphIn<'a> {
    store: SketchStoreIn<'a>,
    sizes: Cow<'a, [u32]>,
    bf_estimator: BfEstimator,
    params: SketchParams,
    /// `Some` when the store carries per-set geometry: the per-stratum
    /// parameter table plus the per-set stratum assignment. `params` then
    /// holds stratum 0 (the widest / highest-degree stratum).
    stratified: Option<StratifiedParams>,
    /// The master hash seed the sketches were built under. The collections
    /// only retain their derived [`pg_hash::HashFamily`] seeds, so the
    /// master is recorded here — snapshots persist it, and a reloaded
    /// store hashes identically to the one that was saved.
    seed: u64,
}

/// The owned (`'static`) form of [`ProbGraphIn`].
pub type ProbGraph = ProbGraphIn<'static>;

impl<'a> ProbGraphIn<'a> {
    /// Builds sketches of the full neighborhoods `N_v` of `g`
    /// (Listing 6: `ProbGraph pg = ProbGraph(g, BF, 0.25)`).
    pub fn build(g: &CsrGraph, cfg: &PgConfig) -> ProbGraph {
        Self::build_over(
            g.num_vertices(),
            g.memory_bytes(),
            |v| g.neighbors(v as VertexId),
            cfg,
        )
    }

    /// Builds sketches of the oriented out-neighborhoods `N⁺_v` of a
    /// degree-ordered DAG — the sets Triangle/4-Clique Counting intersect
    /// (Listings 1–2). `base_bytes` should be the CSR footprint of the
    /// original graph so the budget means the same thing as in
    /// [`ProbGraph::build`].
    pub fn build_dag(dag: &OrientedDag, base_bytes: usize, cfg: &PgConfig) -> ProbGraph {
        Self::build_over(
            dag.num_vertices(),
            base_bytes,
            |v| dag.neighbors_plus(v as VertexId),
            cfg,
        )
    }

    /// Low-level constructor over arbitrary sorted sets. `n_sets` may be
    /// zero — an empty graph yields a truly empty ProbGraph
    /// (`len() == 0`), not a dummy one-set sentinel.
    pub fn build_over<'s, F>(n_sets: usize, base_bytes: usize, set: F, cfg: &PgConfig) -> ProbGraph
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        let mut sizes = vec![0u32; n_sets];
        pg_parallel::parallel_fill_with(&mut sizes, |i| set(i).len() as u32);
        if cfg.strata.is_some() {
            // Stratified geometry needs the degree distribution, which is
            // exactly the size array just computed.
            let sparams = resolve_stratified(n_sets, base_bytes, cfg, &sizes);
            if !sparams.is_uniform() {
                let store = build_store_stratified(&sparams, cfg.seed, &set);
                return ProbGraphIn {
                    store,
                    sizes: Cow::Owned(sizes),
                    bf_estimator: cfg.bf_estimator,
                    params: sparams.strata()[0],
                    stratified: Some(sparams),
                    seed: cfg.seed,
                };
            }
            // One stratum (or a collapsed plan): take the flat fast path
            // with the resolved params — bit-identical to the uniform
            // planner by the StratifiedPlan arithmetic.
            let params = sparams.strata()[0];
            let store = build_store(params, n_sets, cfg.seed, &set);
            return ProbGraphIn {
                store,
                sizes: Cow::Owned(sizes),
                bf_estimator: cfg.bf_estimator,
                params,
                stratified: None,
                seed: cfg.seed,
            };
        }
        let params = resolve_params(n_sets, base_bytes, cfg);
        let store = build_store(params, n_sets, cfg.seed, &set);
        ProbGraphIn {
            store,
            sizes: Cow::Owned(sizes),
            bf_estimator: cfg.bf_estimator,
            params,
            stratified: None,
            seed: cfg.seed,
        }
    }

    /// Builds sketches over `n_sets` sorted sets with **already-resolved**
    /// parameters, bypassing budget resolution. Each row's sketch depends
    /// only on `(params, seed, set(i))`, so a store built here over any
    /// subset of a graph's rows is bit-identical, row for row, to the
    /// corresponding rows of the full [`ProbGraph::build_dag`] store built
    /// under the same params and seed — the property the distributed
    /// exchange (`crate::exchange`) relies on when workers rebuild their
    /// owned sub-stores independently.
    pub fn build_rows<'s, F>(
        n_sets: usize,
        params: SketchParams,
        bf_estimator: BfEstimator,
        seed: u64,
        set: F,
    ) -> ProbGraph
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        let store = build_store(params, n_sets, seed, &set);
        let mut sizes = vec![0u32; n_sets];
        pg_parallel::parallel_fill_with(&mut sizes, |i| set(i).len() as u32);
        ProbGraphIn {
            store,
            sizes: Cow::Owned(sizes),
            bf_estimator,
            params,
            stratified: None,
            seed,
        }
    }

    /// Stratified sibling of [`ProbGraph::build_rows`]: builds sketches
    /// over `n_sets` sorted sets with an **already-resolved** per-stratum
    /// parameter table and per-set assignment (`sparams.assign()` must
    /// cover exactly these rows). Row `i`'s sketch depends only on
    /// `(sparams.params_of(i), seed, set(i))`, so sub-stores built here
    /// over row ranges are bit-identical, row for row, to the full build —
    /// the same property the distributed exchange relies on uniformly.
    pub fn build_rows_stratified<'s, F>(
        n_sets: usize,
        sparams: StratifiedParams,
        bf_estimator: BfEstimator,
        seed: u64,
        set: F,
    ) -> ProbGraph
    where
        F: Fn(usize) -> &'s [u32] + Sync,
    {
        assert_eq!(
            sparams.assign().len(),
            n_sets,
            "assignment must cover every row"
        );
        let mut sizes = vec![0u32; n_sets];
        pg_parallel::parallel_fill_with(&mut sizes, |i| set(i).len() as u32);
        if sparams.is_uniform() {
            return Self::build_rows(n_sets, sparams.strata()[0], bf_estimator, seed, set);
        }
        let store = build_store_stratified(&sparams, seed, &set);
        ProbGraphIn {
            store,
            sizes: Cow::Owned(sizes),
            bf_estimator,
            params: sparams.strata()[0],
            stratified: Some(sparams),
            seed,
        }
    }

    /// Detaches the graph from any borrowed snapshot buffer, cloning the
    /// backing arrays if they were served in place. No-op for owned data.
    pub fn into_owned(self) -> ProbGraph {
        ProbGraphIn {
            store: self.store.into_owned(),
            sizes: Cow::Owned(self.sizes.into_owned()),
            bf_estimator: self.bf_estimator,
            params: self.params,
            stratified: self.stratified,
            seed: self.seed,
        }
    }

    /// Mutable access to the store and size array together — the serving
    /// layer's publish path gathers shard lanes into a reclaimed snapshot
    /// in place (`crate::serving`), which is only sound because it
    /// overwrites both halves from lanes built under this graph's own
    /// params and seed.
    pub(crate) fn parts_mut(&mut self) -> (&mut SketchStoreIn<'a>, &mut Vec<u32>) {
        (&mut self.store, self.sizes.to_mut())
    }

    /// Assembles a ProbGraph from already-validated parts — the snapshot
    /// load path (`crate::snapshot`), which has checked that the store,
    /// sizes, params, and seed are mutually consistent before calling.
    pub(crate) fn from_parts(
        store: SketchStoreIn<'a>,
        sizes: impl Into<Cow<'a, [u32]>>,
        bf_estimator: BfEstimator,
        params: SketchParams,
        stratified: Option<StratifiedParams>,
        seed: u64,
    ) -> ProbGraphIn<'a> {
        ProbGraphIn {
            store,
            sizes: sizes.into(),
            bf_estimator,
            params,
            stratified,
            seed,
        }
    }

    /// Number of sketched sets.
    #[inline]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when no sets are sketched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Exact size of set `i` (the degree, recorded at build time).
    #[inline]
    pub fn set_size(&self, i: usize) -> usize {
        self.sizes[i] as usize
    }

    /// The resolved sketch parameters (B and b, or k). For stratified
    /// graphs this is **stratum 0** — the widest, highest-degree stratum;
    /// use [`ProbGraph::stratified_params`] for the full per-set geometry.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// The full per-set geometry when the graph was built under a
    /// multi-stratum [`StrataSpec`]; `None` on the uniform fast path
    /// (including one-stratum and collapsed specs).
    #[inline]
    pub fn stratified_params(&self) -> Option<&StratifiedParams> {
        self.stratified.as_ref()
    }

    /// The underlying sketches (for algorithms needing membership queries
    /// or raw samples, e.g. 4-clique counting).
    #[inline]
    pub fn store(&self) -> &SketchStoreIn<'a> {
        &self.store
    }

    /// The configured Bloom estimator variant.
    #[inline]
    pub fn bf_estimator(&self) -> BfEstimator {
        self.bf_estimator
    }

    /// The master hash seed the sketches were built under (persisted by
    /// snapshots so a reloaded store hashes identically).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The exact set sizes recorded at build time (one per sketched set).
    #[inline]
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Resolves the stored representation to a concrete
    /// [`IntersectionOracle`] and runs `visitor` against it — the **one**
    /// place the representation enum (and the Bloom estimator variant) is
    /// matched. Algorithm kernels written against a generic
    /// `O: IntersectionOracle` get monomorphized per representation, so
    /// their per-edge loops carry no enum dispatch at all.
    ///
    /// ```
    /// use pg_graph::gen;
    /// use probgraph::oracle::{IntersectionOracle, OracleVisitor};
    /// use probgraph::{PgConfig, ProbGraph, Representation};
    ///
    /// struct SumOverEdges<'a>(&'a pg_graph::CsrGraph);
    /// impl OracleVisitor for SumOverEdges<'_> {
    ///     type Output = f64;
    ///     fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
    ///         // Dispatch already happened; this loop is branch-free.
    ///         self.0.edges().map(|(u, v)| o.estimate(u, v).max(0.0)).sum()
    ///     }
    /// }
    ///
    /// let g = gen::kronecker(8, 8, 1);
    /// let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Hll, 0.25));
    /// let total = pg.with_oracle(SumOverEdges(&g));
    /// assert!(total >= 0.0);
    /// ```
    pub fn with_oracle<V: OracleVisitor>(&self, visitor: V) -> V::Output {
        let sizes = &self.sizes[..];
        match &self.store {
            SketchStoreIn::Bloom(c) => match self.bf_estimator {
                BfEstimator::And => visitor.visit(&BloomOracle::<BloomAnd>::new(c, sizes)),
                BfEstimator::Limit => visitor.visit(&BloomOracle::<BloomLimit>::new(c, sizes)),
                BfEstimator::Or => visitor.visit(&BloomOracle::<BloomOr>::new(c, sizes)),
            },
            // The counting store reads through its derived Bloom view, so
            // the very same monomorphized oracles (and estimator
            // strategies) serve it — deletions cost nothing on this path.
            SketchStoreIn::CountingBloom(c) => {
                let view = c.read_view();
                match self.bf_estimator {
                    BfEstimator::And => visitor.visit(&BloomOracle::<BloomAnd>::new(view, sizes)),
                    BfEstimator::Limit => {
                        visitor.visit(&BloomOracle::<BloomLimit>::new(view, sizes))
                    }
                    BfEstimator::Or => visitor.visit(&BloomOracle::<BloomOr>::new(view, sizes)),
                }
            }
            SketchStoreIn::KHash(c) => visitor.visit(&KHashOracle::new(c, sizes)),
            SketchStoreIn::OneHash(c) => visitor.visit(&OneHashOracle::new(c, sizes)),
            SketchStoreIn::Kmv(c) => visitor.visit(&KmvOracle::new(c, sizes)),
            SketchStoreIn::Hll(c) => visitor.visit(&HllOracle::new(c, sizes)),
        }
    }

    /// Incremental builder for evolving graphs: empty sketches resolved
    /// under exactly the same budget plan as [`ProbGraph::build`] (same
    /// `base_bytes`, set count, and config ⇒ same sketch parameters),
    /// then `edges` absorbed in place via [`ProbGraph::apply_batch`].
    ///
    /// `base_bytes` should be the CSR footprint the budget is measured
    /// against — for a graph that will grow to a known working size, pass
    /// that target footprint so the sketches are provisioned once. The
    /// differential property suite (`tests/streaming_equivalence.rs`)
    /// pins this path to [`ProbGraph::build`]: streaming any prefix and
    /// applying the rest in batches yields bit-identical sketches for
    /// Bloom/k-hash/HLL and estimator-identical ones for KMV/bottom-k.
    pub fn stream_from(
        n_vertices: usize,
        base_bytes: usize,
        cfg: &PgConfig,
        edges: &[Edge],
    ) -> ProbGraph {
        let mut pg = Self::build_over(n_vertices, base_bytes, |_| &[][..], cfg);
        pg.apply_batch(edges);
        pg
    }

    /// Absorbs a batch of **new undirected edges** into the sketches in
    /// place — no rebuild. Each `{u, v}` inserts `v` into `N_u`'s sketch
    /// and `u` into `N_v`'s and bumps both recorded set sizes.
    ///
    /// Updates are grouped per source vertex before hitting the store, so
    /// per-set state (Bloom word window, counting-Bloom counter window,
    /// MinHash slot hashes, the bottom-k/KMV bounded heap) is hoisted
    /// once per touched set and the multi-lane row kernels remain the
    /// untouched read path. Batches follow [`pg_graph::CsrGraph`] rebuild
    /// semantics: self-loops are dropped, and duplicate edges *within the
    /// batch* (in either orientation) are applied once. Edges must not
    /// already be present in the graph (see [`MutableOracle`] — sketches
    /// cannot check membership, so cross-batch duplicates still inflate
    /// the recorded sizes); endpoints must lie in `0..len()` — the vertex
    /// universe is fixed at construction.
    pub fn apply_batch(&mut self, edges: &[Edge]) {
        if let [(u, v)] = edges {
            // Single-edge batches — the live-tick steady state — skip the
            // sort/group machinery and its allocations entirely.
            if u != v {
                self.insert_edge(*u, *v);
            }
            return;
        }
        self.apply_updates(Self::undirected_updates(edges), false);
    }

    /// Directed form of [`ProbGraph::apply_batch`] for oriented sets
    /// (DAG out-neighborhoods, [`ProbGraph::build_dag`]'s shape): each
    /// arc `(v, u)` inserts `u` into set `v`'s sketch only. Use it with
    /// sketches *seeded from arcs too* (`stream_from` with an empty edge
    /// list, then `apply_arcs` for the history) — seeding through the
    /// undirected [`ProbGraph::stream_from`] would put both endpoints in
    /// every sketch and silently corrupt the `N⁺` sets. Self-loop arcs
    /// are dropped and in-batch duplicates applied once, as in
    /// [`ProbGraph::apply_batch`].
    pub fn apply_arcs(&mut self, arcs: &[Edge]) {
        if let [(v, u)] = arcs {
            if v != u {
                self.insert_into(*v, *u);
            }
            return;
        }
        self.apply_updates(Self::arc_updates(arcs), false);
    }

    /// Removes a batch of **present undirected edges** from the sketches
    /// in place — the deletion mirror of [`ProbGraph::apply_batch`], with
    /// identical per-source-vertex grouping and the same rebuild
    /// semantics (self-loops dropped, in-batch duplicates removed once).
    /// Every edge must currently be present, and the representation must
    /// support removals ([`ProbGraph::remove_supported`], i.e.
    /// [`Representation::CountingBloom`]) — routing a removal at any
    /// other store panics loudly rather than corrupting it.
    pub fn remove_batch(&mut self, edges: &[Edge]) {
        if let [(u, v)] = edges {
            if u != v {
                self.remove_edge(*u, *v);
            }
            return;
        }
        self.apply_updates(Self::undirected_updates(edges), true);
    }

    /// Directed form of [`ProbGraph::remove_batch`]: each arc `(v, u)`
    /// removes `u` from set `v`'s sketch only — the deletion mirror of
    /// [`ProbGraph::apply_arcs`].
    pub fn remove_arcs(&mut self, arcs: &[Edge]) {
        if let [(v, u)] = arcs {
            if v != u {
                self.remove_from(*v, *u);
            }
            return;
        }
        self.apply_updates(Self::arc_updates(arcs), true);
    }

    /// Non-panicking form of [`ProbGraph::remove_batch`]: refuses the
    /// whole batch with [`UnsupportedOperation`] when the stored
    /// representation is not invertible, leaving the sketches untouched.
    pub fn try_remove_batch(&mut self, edges: &[Edge]) -> Result<(), UnsupportedOperation> {
        if !self.remove_supported() {
            return Err(UnsupportedOperation::removal());
        }
        self.remove_batch(edges);
        Ok(())
    }

    /// Non-panicking form of [`ProbGraph::remove_arcs`] — same all-or-
    /// nothing contract as [`ProbGraph::try_remove_batch`].
    pub fn try_remove_arcs(&mut self, arcs: &[Edge]) -> Result<(), UnsupportedOperation> {
        if !self.remove_supported() {
            return Err(UnsupportedOperation::removal());
        }
        self.remove_arcs(arcs);
        Ok(())
    }

    /// Expands undirected edges into per-set `(set, element)` updates,
    /// dropping self-loops (duplicates die in `apply_updates`' dedup).
    fn undirected_updates(edges: &[Edge]) -> Vec<(VertexId, u32)> {
        let mut updates = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u != v {
                updates.push((u, v));
                updates.push((v, u));
            }
        }
        updates
    }

    /// Keeps arcs as they are, dropping self-loops.
    fn arc_updates(arcs: &[Edge]) -> Vec<(VertexId, u32)> {
        arcs.iter().copied().filter(|&(v, u)| v != u).collect()
    }

    /// Shared update path: sort `(set, element)` pairs so each touched
    /// set is one contiguous run, dedup within the batch (CSR rebuild
    /// semantics — a duplicate edge contributes one neighbor), then one
    /// batched store insert/remove per run.
    fn apply_updates(&mut self, mut updates: Vec<(VertexId, u32)>, remove: bool) {
        updates.sort_unstable();
        updates.dedup();
        let mut xs: Vec<u32> = Vec::new();
        let mut i = 0;
        while i < updates.len() {
            let s = updates[i].0;
            xs.clear();
            while i < updates.len() && updates[i].0 == s {
                xs.push(updates[i].1);
                i += 1;
            }
            if remove {
                self.remove_from_many(s, &xs);
            } else {
                self.insert_into_many(s, &xs);
            }
        }
    }

    /// True when the stored representation supports edge removals —
    /// [`Representation::CountingBloom`] does, the other five do not
    /// (see [`MutableOracle::remove_supported`]).
    #[inline]
    pub fn remove_supported(&self) -> bool {
        self.store.remove_supported()
    }

    /// `|N_u ∩ N_v|̂` — the drop-in replacement for the exact intersection
    /// cardinality (the blue operations in the paper's listings).
    ///
    /// Convenience single-pair entry point; loops should go through
    /// [`ProbGraph::with_oracle`] so the dispatch below happens once per
    /// call instead of once per edge.
    pub fn estimate_intersection(&self, u: VertexId, v: VertexId) -> f64 {
        struct Pair(VertexId, VertexId);
        impl OracleVisitor for Pair {
            type Output = f64;
            fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
                o.estimate(self.0, self.1)
            }
        }
        self.with_oracle(Pair(u, v))
    }

    /// `Ĵ(N_u, N_v)` — approximate Jaccard similarity (Listing 3 / 6).
    ///
    /// MinHash stores estimate Jaccard natively; Bloom/KMV/HLL derive it
    /// from the intersection estimate and the exact sizes, clamped to
    /// `[0, 1]` (the [`IntersectionOracle::jaccard`] default).
    pub fn estimate_jaccard(&self, u: VertexId, v: VertexId) -> f64 {
        struct Pair(VertexId, VertexId);
        impl OracleVisitor for Pair {
            type Output = f64;
            fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
                o.jaccard(self.0, self.1)
            }
        }
        self.with_oracle(Pair(u, v))
    }

    /// Bytes of additional storage used by the sketches — the quantity the
    /// paper's "relative memory" axis reports against the budget.
    pub fn memory_bytes(&self) -> usize {
        let store = match &self.store {
            SketchStoreIn::Bloom(c) => c.memory_bytes(),
            SketchStoreIn::CountingBloom(c) => c.memory_bytes(),
            SketchStoreIn::KHash(c) => c.memory_bytes(),
            SketchStoreIn::OneHash(c) => c.memory_bytes(),
            SketchStoreIn::Kmv(c) => c.memory_bytes(),
            SketchStoreIn::Hll(c) => c.memory_bytes(),
        };
        store + self.sizes.len() * 4
    }
}

impl MutableOracle for SketchStoreIn<'_> {
    #[inline]
    fn insert_into(&mut self, v: VertexId, x: u32) {
        match self {
            SketchStoreIn::Bloom(c) => c.insert_into(v, x),
            SketchStoreIn::CountingBloom(c) => c.insert_into(v, x),
            SketchStoreIn::KHash(c) => c.insert_into(v, x),
            SketchStoreIn::OneHash(c) => c.insert_into(v, x),
            SketchStoreIn::Kmv(c) => c.insert_into(v, x),
            SketchStoreIn::Hll(c) => c.insert_into(v, x),
        }
    }

    #[inline]
    fn insert_into_many(&mut self, v: VertexId, xs: &[u32]) {
        match self {
            SketchStoreIn::Bloom(c) => c.insert_into_many(v, xs),
            SketchStoreIn::CountingBloom(c) => c.insert_into_many(v, xs),
            SketchStoreIn::KHash(c) => c.insert_into_many(v, xs),
            SketchStoreIn::OneHash(c) => c.insert_into_many(v, xs),
            SketchStoreIn::Kmv(c) => c.insert_into_many(v, xs),
            SketchStoreIn::Hll(c) => c.insert_into_many(v, xs),
        }
    }

    #[inline]
    fn remove_from(&mut self, v: VertexId, x: u32) {
        match self {
            SketchStoreIn::CountingBloom(c) => c.remove_from(v, x),
            // Defer to the trait default's loud panic for the
            // non-invertible stores.
            _ => fail_remove_unsupported(),
        }
    }

    #[inline]
    fn remove_from_many(&mut self, v: VertexId, xs: &[u32]) {
        match self {
            SketchStoreIn::CountingBloom(c) => c.remove_from_many(v, xs),
            _ => fail_remove_unsupported(),
        }
    }

    #[inline]
    fn remove_supported(&self) -> bool {
        matches!(self, SketchStoreIn::CountingBloom(_))
    }
}

/// Resolves the sketch parameters [`ProbGraph::build_over`] would use for
/// a `n_sets`-set graph with CSR footprint `base_bytes` under `cfg` — the
/// **one** place budget planning happens, shared with the serving layer so
/// shard lanes resolve against the *global* set count and footprint and
/// end up parameter-identical to a serial build.
///
/// The strict `BudgetPlan` planners reject budgets below one slot
/// (`PlanError::BudgetTooSmall`); ProbGraph explicitly opts into the
/// minimal sketch instead — on the degenerate graphs where a sane `s`
/// still cannot pay for one slot (a few dozen vertices), overshooting the
/// budget by a handful of bytes per set beats refusing to build. Real
/// deployments planning real budgets should use the `try_*` planners and
/// surface the error.
pub(crate) fn resolve_params(n_sets: usize, base_bytes: usize, cfg: &PgConfig) -> SketchParams {
    let plan = BudgetPlan::new(base_bytes, n_sets, cfg.budget);
    match cfg.representation {
        Representation::Bloom { b } => plan.bloom(b),
        Representation::CountingBloom { b } => plan.counting_bloom(b),
        Representation::KHash => plan.try_khash().unwrap_or(SketchParams::KHash { k: 1 }),
        Representation::OneHash => plan.try_onehash().unwrap_or(SketchParams::OneHash { k: 1 }),
        Representation::Kmv => plan.try_kmv().unwrap_or(SketchParams::Kmv { k: 1 }),
        Representation::Hll => plan.hll(),
    }
}

/// Resolves **stratified** sketch parameters: the same total budget as
/// [`resolve_params`], split per degree-quantile stratum by
/// [`StratifiedPlan`]. `degrees` drives the assignment (set `i` →
/// stratum by descending-degree rank). Mirrors [`resolve_params`]'
/// opt-into-the-minimal-sketch stance: where the strict stratified
/// planners reject a stratum's share, the whole plan falls back to the
/// minimal uniform sketch rather than refusing to build.
pub(crate) fn resolve_stratified(
    n_sets: usize,
    base_bytes: usize,
    cfg: &PgConfig,
    degrees: &[u32],
) -> StratifiedParams {
    let spec = cfg.strata.clone().unwrap_or_else(StrataSpec::uniform);
    let plan = StratifiedPlan::new(BudgetPlan::new(base_bytes, n_sets, cfg.budget), spec);
    let min_uniform = |p: SketchParams| StratifiedParams::new(vec![p], vec![0u8; n_sets]);
    match cfg.representation {
        Representation::Bloom { b } => plan.bloom(degrees, b),
        Representation::CountingBloom { b } => plan.counting_bloom(degrees, b),
        Representation::KHash => plan
            .try_khash(degrees)
            .unwrap_or_else(|_| min_uniform(SketchParams::KHash { k: 1 })),
        Representation::OneHash => plan
            .try_onehash(degrees)
            .unwrap_or_else(|_| min_uniform(SketchParams::OneHash { k: 1 })),
        Representation::Kmv => plan
            .try_kmv(degrees)
            .unwrap_or_else(|_| min_uniform(SketchParams::Kmv { k: 1 })),
        Representation::Hll => plan.hll(degrees),
    }
}

/// Builds the concrete store for already-resolved `params` over `n_sets`
/// sets. The params variant determines the representation, so a store
/// built here always matches its params — serving constructs per-shard
/// lanes (and empty snapshot buffers) with globally-resolved params but
/// local set counts.
pub(crate) fn build_store<'a, F>(
    params: SketchParams,
    n_sets: usize,
    seed: u64,
    set: F,
) -> SketchStore
where
    F: Fn(usize) -> &'a [u32] + Sync,
{
    match params {
        SketchParams::Bloom { bits_per_set, b } => {
            SketchStoreIn::Bloom(BloomCollection::build(n_sets, bits_per_set, b, seed, set))
        }
        SketchParams::CountingBloom { bits_per_set, b } => SketchStoreIn::CountingBloom(
            CountingBloomCollection::build(n_sets, bits_per_set, b, seed, set),
        ),
        SketchParams::KHash { k } => {
            SketchStoreIn::KHash(MinHashCollection::build(n_sets, k, seed, set))
        }
        SketchParams::OneHash { k } => {
            SketchStoreIn::OneHash(BottomKCollection::build(n_sets, k, seed, set))
        }
        SketchParams::Kmv { k } => SketchStoreIn::Kmv(KmvCollection::build(n_sets, k, seed, set)),
        SketchParams::Hll { precision } => {
            SketchStoreIn::Hll(HyperLogLogCollection::build(n_sets, precision, seed, set))
        }
    }
}

/// Stratified sibling of [`build_store`]: dispatches the per-stratum
/// parameter table to the matching collection's `build_stratified`. Every
/// stratum must resolve to the same representation variant (and hash
/// count) — [`StratifiedPlan`] guarantees it; hand-rolled tables that mix
/// variants panic here.
pub(crate) fn build_store_stratified<'a, F>(
    sparams: &StratifiedParams,
    seed: u64,
    set: F,
) -> SketchStore
where
    F: Fn(usize) -> &'a [u32] + Sync,
{
    let assign = sparams.assign().to_vec();
    match sparams.strata()[0] {
        SketchParams::Bloom { b, .. } => {
            let bits = stratum_table(sparams, |p| match p {
                SketchParams::Bloom {
                    bits_per_set,
                    b: b2,
                } if *b2 == b => *bits_per_set as u32,
                _ => panic!("stratified params mix representations: {p:?}"),
            });
            SketchStoreIn::Bloom(BloomCollection::build_stratified(
                bits, assign, b, seed, set,
            ))
        }
        SketchParams::CountingBloom { b, .. } => {
            let bits = stratum_table(sparams, |p| match p {
                SketchParams::CountingBloom {
                    bits_per_set,
                    b: b2,
                } if *b2 == b => *bits_per_set as u32,
                _ => panic!("stratified params mix representations: {p:?}"),
            });
            SketchStoreIn::CountingBloom(CountingBloomCollection::build_stratified(
                bits, assign, b, seed, set,
            ))
        }
        SketchParams::KHash { .. } => {
            let ks = stratum_table(sparams, |p| match p {
                SketchParams::KHash { k } => *k as u32,
                _ => panic!("stratified params mix representations: {p:?}"),
            });
            SketchStoreIn::KHash(MinHashCollection::build_stratified(ks, assign, seed, set))
        }
        SketchParams::OneHash { .. } => {
            let ks = stratum_table(sparams, |p| match p {
                SketchParams::OneHash { k } => *k as u32,
                _ => panic!("stratified params mix representations: {p:?}"),
            });
            SketchStoreIn::OneHash(BottomKCollection::build_stratified(ks, assign, seed, set))
        }
        SketchParams::Kmv { .. } => {
            let ks = stratum_table(sparams, |p| match p {
                SketchParams::Kmv { k } => *k as u32,
                _ => panic!("stratified params mix representations: {p:?}"),
            });
            SketchStoreIn::Kmv(KmvCollection::build_stratified(ks, assign, seed, set))
        }
        SketchParams::Hll { .. } => {
            let ps = stratum_table(sparams, |p| match p {
                SketchParams::Hll { precision } => *precision,
                _ => panic!("stratified params mix representations: {p:?}"),
            });
            SketchStoreIn::Hll(HyperLogLogCollection::build_stratified(
                ps, assign, seed, set,
            ))
        }
    }
}

/// Maps the per-stratum parameter table through `f` (width/`k`/precision
/// extraction per representation).
fn stratum_table<T>(sparams: &StratifiedParams, f: impl Fn(&SketchParams) -> T) -> Vec<T> {
    sparams.strata().iter().map(f).collect()
}

/// The shared removal-unsupported panic (same message as the
/// [`MutableOracle`] trait default, which `match` arms cannot call).
#[cold]
fn fail_remove_unsupported() -> ! {
    panic!(
        "this representation does not support removals \
         (remove_supported() == false); use Representation::CountingBloom"
    )
}

/// The [`ProbGraph`]-level write path: updates the stored sketch **and**
/// the recorded exact set size, keeping every size-consuming estimator
/// (Eq. 5, OR, inclusion–exclusion) consistent with the mutation.
impl MutableOracle for ProbGraphIn<'_> {
    #[inline]
    fn insert_into(&mut self, v: VertexId, x: u32) {
        self.store.insert_into(v, x);
        self.sizes.to_mut()[v as usize] += 1;
    }

    #[inline]
    fn insert_into_many(&mut self, v: VertexId, xs: &[u32]) {
        self.store.insert_into_many(v, xs);
        self.sizes.to_mut()[v as usize] += xs.len() as u32;
    }

    #[inline]
    fn remove_from(&mut self, v: VertexId, x: u32) {
        self.store.remove_from(v, x);
        self.sizes.to_mut()[v as usize] -= 1;
    }

    #[inline]
    fn remove_from_many(&mut self, v: VertexId, xs: &[u32]) {
        self.store.remove_from_many(v, xs);
        self.sizes.to_mut()[v as usize] -= xs.len() as u32;
    }

    #[inline]
    fn remove_supported(&self) -> bool {
        self.store.remove_supported()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::intersect_card;
    use pg_graph::gen;

    fn all_reps() -> Vec<Representation> {
        vec![
            Representation::Bloom { b: 2 },
            Representation::CountingBloom { b: 2 },
            Representation::KHash,
            Representation::OneHash,
            Representation::Kmv,
            Representation::Hll,
        ]
    }

    #[test]
    fn builds_under_budget_for_every_representation() {
        let g = gen::kronecker(9, 8, 3);
        for rep in all_reps() {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.25));
            assert_eq!(pg.len(), g.num_vertices());
            // Sizes must equal degrees.
            for v in 0..g.num_vertices() {
                assert_eq!(pg.set_size(v), g.degree(v as u32), "{rep:?}");
            }
            // Budget respected within word-granularity and per-sketch
            // bookkeeping slack.
            let slack = pg.len() * 32 + 64;
            assert!(
                pg.memory_bytes()
                    <= (g.memory_bytes() as f64 * 0.25) as usize + slack + pg.len() * 4,
                "{rep:?}: {} vs budget {}",
                pg.memory_bytes(),
                (g.memory_bytes() as f64 * 0.25) as usize
            );
        }
    }

    #[test]
    fn estimates_correlate_with_truth() {
        // On a dense ER graph all estimators must track the exact
        // intersection with errors far below the degree scale.
        let g = gen::erdos_renyi_gnm(300, 300 * 40, 7);
        for rep in all_reps() {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.33));
            let mut total_rel_err = 0.0;
            let mut pairs = 0;
            for (u, v) in g.edges().take(400) {
                let exact = intersect_card(g.neighbors(u), g.neighbors(v));
                if exact == 0 {
                    continue;
                }
                let est = pg.estimate_intersection(u, v);
                total_rel_err += (est - exact as f64).abs() / exact as f64;
                pairs += 1;
            }
            let mean_err = total_rel_err / pairs as f64;
            // HLL's inclusion–exclusion error scales with |X∪Y| rather than
            // |X∩Y| (same caveat as the paper's Eq. 41 KMV estimator), so
            // its tolerance on this intersection-dominated workload is
            // looser; the element-based sketches keep the tight bound.
            // Counting Bloom pays 4 counter bits per view bit, so at equal
            // budget its filters hold ~1/5 the buckets of plain Bloom and
            // run far denser — the deletion path is what the accuracy gap
            // buys.
            let bound = match rep {
                Representation::Hll => 3.0,
                Representation::CountingBloom { .. } => 6.0,
                _ => 0.8,
            };
            assert!(mean_err < bound, "{rep:?}: mean relative error {mean_err}");
        }
    }

    #[test]
    fn jaccard_estimates_are_probabilities() {
        let g = gen::kronecker(8, 8, 1);
        for rep in all_reps() {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.25));
            for (u, v) in g.edges().take(200) {
                let j = pg.estimate_jaccard(u, v);
                assert!((0.0..=1.0).contains(&j), "{rep:?}: J={j}");
            }
        }
    }

    #[test]
    fn bf_estimator_variants_differ_but_agree_in_scale() {
        let g = gen::erdos_renyi_gnm(200, 6000, 5);
        let base = PgConfig::new(Representation::Bloom { b: 2 }, 0.33);
        let and = ProbGraph::build(&g, &base);
        let lim = ProbGraph::build(&g, &base.clone().with_bf_estimator(BfEstimator::Limit));
        let or = ProbGraph::build(&g, &base.clone().with_bf_estimator(BfEstimator::Or));
        let (u, v) = g.edges().next().unwrap();
        let exact = intersect_card(g.neighbors(u), g.neighbors(v)) as f64;
        for (name, pg) in [("AND", &and), ("L", &lim), ("OR", &or)] {
            let e = pg.estimate_intersection(u, v);
            assert!(
                e >= 0.0 && (e - exact).abs() < exact.max(8.0) * 1.5,
                "{name}: est={e} exact={exact}"
            );
        }
    }

    #[test]
    fn dag_variant_sketches_out_neighborhoods() {
        let g = gen::kronecker(8, 8, 2);
        let dag = pg_graph::orient_by_degree(&g);
        let pg = ProbGraph::build_dag(
            &dag,
            g.memory_bytes(),
            &PgConfig::new(Representation::OneHash, 0.25),
        );
        for v in 0..g.num_vertices() {
            assert_eq!(pg.set_size(v), dag.out_degree(v as u32));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gen::kronecker(7, 6, 9);
        let cfg = PgConfig::new(Representation::KHash, 0.2).with_seed(42);
        let a = ProbGraph::build(&g, &cfg);
        let b = ProbGraph::build(&g, &cfg);
        let (u, v) = g.edges().next().unwrap();
        assert_eq!(a.estimate_intersection(u, v), b.estimate_intersection(u, v));
    }

    #[test]
    fn stream_from_matches_build_for_every_representation() {
        let g = gen::erdos_renyi_gnm(80, 600, 11);
        let edges = g.edge_list();
        let split = edges.len() / 2;
        for rep in all_reps() {
            let cfg = PgConfig::new(rep, 0.3);
            let full = ProbGraph::build(&g, &cfg);
            let mut inc =
                ProbGraph::stream_from(g.num_vertices(), g.memory_bytes(), &cfg, &edges[..split]);
            inc.apply_batch(&edges[split..]);
            assert_eq!(inc.params(), full.params(), "{rep:?}");
            for v in 0..g.num_vertices() {
                assert_eq!(inc.set_size(v), full.set_size(v), "{rep:?} v={v}");
            }
            for (u, v) in g.edges().take(300) {
                assert_eq!(
                    inc.estimate_intersection(u, v),
                    full.estimate_intersection(u, v),
                    "{rep:?} ({u},{v})"
                );
                assert_eq!(
                    inc.estimate_jaccard(u, v),
                    full.estimate_jaccard(u, v),
                    "{rep:?} ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn single_edge_insert_updates_sketch_and_sizes() {
        // A fresh edge between previously unconnected vertices must show
        // up in sizes immediately and match the rebuilt graph exactly.
        let edges: Vec<(u32, u32)> = vec![(0, 1), (0, 2), (1, 2), (3, 4)];
        let g = pg_graph::CsrGraph::from_edges(6, &edges);
        let mut with_new = edges.clone();
        with_new.push((2, 3));
        let g2 = pg_graph::CsrGraph::from_edges(6, &with_new);
        for rep in all_reps() {
            let cfg = PgConfig::new(rep, 1.0);
            let mut pg = ProbGraph::stream_from(6, g.memory_bytes(), &cfg, &edges);
            assert_eq!(
                pg.remove_supported(),
                matches!(rep, Representation::CountingBloom { .. }),
                "{rep:?}"
            );
            pg.insert_edge(2, 3);
            let rebuilt =
                ProbGraph::build_over(6, g.memory_bytes(), |v| g2.neighbors(v as u32), &cfg);
            for v in 0..6u32 {
                assert_eq!(pg.set_size(v as usize), g2.degree(v), "{rep:?} v={v}");
                for u in 0..6u32 {
                    assert_eq!(
                        pg.estimate_intersection(v, u),
                        rebuilt.estimate_intersection(v, u),
                        "{rep:?} ({v},{u})"
                    );
                }
            }
        }
    }

    #[test]
    fn counting_bloom_removal_matches_survivor_rebuild() {
        // Build, remove a batch of edges, and compare every estimator
        // against a from-scratch build over the surviving edge set.
        let g = gen::erdos_renyi_gnm(60, 400, 13);
        let edges = g.edge_list();
        let (gone, kept) = edges.split_at(edges.len() / 4);
        let g2 = pg_graph::CsrGraph::from_edges(g.num_vertices(), kept);
        for est in [BfEstimator::And, BfEstimator::Limit, BfEstimator::Or] {
            let cfg =
                PgConfig::new(Representation::CountingBloom { b: 2 }, 0.3).with_bf_estimator(est);
            let mut pg = ProbGraph::build(&g, &cfg);
            assert!(pg.remove_supported());
            // Batched removal plus the single-edge path on the last one.
            let (last, bulk) = gone.split_last().unwrap();
            pg.remove_batch(bulk);
            pg.remove_edge(last.0, last.1);
            let rebuilt = ProbGraph::build_over(
                g.num_vertices(),
                g.memory_bytes(),
                |v| g2.neighbors(v as u32),
                &cfg,
            );
            for v in 0..g.num_vertices() {
                assert_eq!(
                    pg.set_size(v),
                    g2.degree(v as u32) as usize,
                    "{est:?} v={v}"
                );
            }
            for (u, v) in g2.edges().take(300) {
                assert_eq!(
                    pg.estimate_intersection(u, v),
                    rebuilt.estimate_intersection(u, v),
                    "{est:?} ({u},{v})"
                );
                assert_eq!(
                    pg.estimate_jaccard(u, v),
                    rebuilt.estimate_jaccard(u, v),
                    "{est:?} ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn counting_bloom_remove_arcs_matches_dag_rebuild() {
        let g = gen::erdos_renyi_gnm(50, 300, 5);
        let dag = pg_graph::orient_by_degree(&g);
        let arcs: Vec<(u32, u32)> = (0..dag.num_vertices() as u32)
            .flat_map(|v| dag.neighbors_plus(v).iter().map(move |&u| (v, u)))
            .collect();
        let cfg = PgConfig::new(Representation::CountingBloom { b: 2 }, 0.3);
        let mut pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
        let (gone, kept) = arcs.split_at(arcs.len() / 3);
        pg.remove_arcs(gone);
        // Rebuild over the surviving oriented sets.
        let mut survivors: Vec<Vec<u32>> = vec![Vec::new(); dag.num_vertices()];
        for &(v, u) in kept {
            survivors[v as usize].push(u);
        }
        let rebuilt = ProbGraph::build_over(
            dag.num_vertices(),
            g.memory_bytes(),
            |v| &survivors[v][..],
            &cfg,
        );
        for (v, surv) in survivors.iter().enumerate() {
            assert_eq!(pg.set_size(v), surv.len(), "v={v}");
            for u in 0..dag.num_vertices() as u32 {
                assert_eq!(
                    pg.estimate_intersection(v as u32, u),
                    rebuilt.estimate_intersection(v as u32, u),
                    "({v},{u})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not support removals")]
    fn removal_on_plain_bloom_panics_loudly() {
        let g = gen::erdos_renyi_gnm(20, 60, 1);
        let mut pg = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 2 }, 0.3));
        let (u, v) = g.edges().next().unwrap();
        pg.remove_edge(u, v);
    }

    #[test]
    fn try_removals_error_instead_of_panicking() {
        let g = gen::erdos_renyi_gnm(30, 120, 2);
        let (u, v) = g.edges().next().unwrap();
        for rep in all_reps() {
            let mut pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.3));
            let before = pg.sizes().to_vec();
            let supported = matches!(rep, Representation::CountingBloom { .. });
            assert_eq!(pg.try_remove_edge(u, v).is_ok(), supported, "{rep:?}");
            if supported {
                // The supported store applied exactly one removal.
                assert_eq!(pg.set_size(u as usize), before[u as usize] as usize - 1);
                assert_eq!(pg.set_size(v as usize), before[v as usize] as usize - 1);
                pg.apply_batch(&[(u, v)]);
            } else {
                // The refusing stores touched nothing.
                assert_eq!(pg.sizes(), &before[..], "{rep:?}");
                assert!(pg.try_remove_batch(&[(u, v)]).is_err(), "{rep:?}");
                assert!(pg.try_remove_arcs(&[(u, v)]).is_err(), "{rep:?}");
                let err = pg.try_remove_edge(u, v).unwrap_err();
                assert!(err.to_string().contains("CountingBloom"), "{rep:?}");
            }
        }
    }

    #[test]
    fn try_remove_batch_matches_panicking_form_on_cbf() {
        let g = gen::erdos_renyi_gnm(50, 300, 9);
        let edges = g.edge_list();
        let (gone, _) = edges.split_at(edges.len() / 3);
        let cfg = PgConfig::new(Representation::CountingBloom { b: 2 }, 0.3);
        let mut via_try = ProbGraph::build(&g, &cfg);
        let mut via_panic = ProbGraph::build(&g, &cfg);
        via_try
            .try_remove_batch(gone)
            .expect("CBF supports removal");
        via_panic.remove_batch(gone);
        for u in 0..g.num_vertices() as u32 {
            for v in 0..g.num_vertices() as u32 {
                assert_eq!(
                    via_try.estimate_intersection(u, v),
                    via_panic.estimate_intersection(u, v),
                    "({u},{v})"
                );
            }
        }
    }

    #[test]
    fn batches_follow_csr_rebuild_semantics() {
        // Self-loops are dropped and in-batch duplicates (either
        // orientation) applied once — streaming a dirty edge list must
        // land exactly where building from the same dirty list does.
        let dirty: Vec<(u32, u32)> = vec![
            (0, 1),
            (1, 0), // duplicate, flipped orientation
            (2, 2), // self-loop
            (1, 2),
            (1, 2), // duplicate, same orientation
            (3, 4),
        ];
        let g = pg_graph::CsrGraph::from_edges(6, &dirty);
        for rep in all_reps() {
            let cfg = PgConfig::new(rep, 1.0);
            let streamed = ProbGraph::stream_from(6, g.memory_bytes(), &cfg, &dirty);
            // Single-edge path: a lone self-loop batch must be a no-op.
            let mut looped = streamed.clone();
            looped.apply_batch(&[(5, 5)]);
            let rebuilt =
                ProbGraph::build_over(6, g.memory_bytes(), |v| g.neighbors(v as u32), &cfg);
            for v in 0..6u32 {
                assert_eq!(streamed.set_size(v as usize), g.degree(v), "{rep:?} v={v}");
                assert_eq!(looped.set_size(v as usize), g.degree(v), "{rep:?} v={v}");
                for u in 0..6u32 {
                    assert_eq!(
                        streamed.estimate_intersection(v, u),
                        rebuilt.estimate_intersection(v, u),
                        "{rep:?} ({v},{u})"
                    );
                    assert_eq!(
                        looped.estimate_intersection(v, u),
                        rebuilt.estimate_intersection(v, u),
                        "{rep:?} ({v},{u})"
                    );
                }
            }
        }
    }

    #[test]
    fn one_stratum_spec_matches_uniform_build_exactly() {
        // Satellite (c) at the ProbGraph level: a uniform StrataSpec must
        // resolve and build bit-identically to no spec at all, for every
        // representation.
        let g = gen::erdos_renyi_gnm(120, 1800, 17);
        for rep in all_reps() {
            let plain = ProbGraph::build(&g, &PgConfig::new(rep, 0.3));
            let strat = ProbGraph::build(
                &g,
                &PgConfig::stratified(rep, 0.3, pg_sketch::StrataSpec::uniform()),
            );
            assert_eq!(strat.params(), plain.params(), "{rep:?}");
            assert!(strat.stratified_params().is_none(), "{rep:?}");
            for (u, v) in g.edges().take(300) {
                assert_eq!(
                    strat.estimate_intersection(u, v),
                    plain.estimate_intersection(u, v),
                    "{rep:?} ({u},{v})"
                );
                assert_eq!(
                    strat.estimate_jaccard(u, v),
                    plain.estimate_jaccard(u, v),
                    "{rep:?} ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn stratified_build_assigns_by_degree_and_estimates_sanely() {
        // A graph dense enough that every stratum's byte share clears the
        // per-representation floors, under the default heavy-tail spec:
        // the widest stratum must hold the highest-degree vertices, and
        // estimates stay plausible for every representation.
        let g = gen::erdos_renyi_gnm(800, 24_000, 3);
        for rep in all_reps() {
            let cfg = PgConfig::stratified(rep, 0.25, pg_sketch::StrataSpec::skewed_default());
            let pg = ProbGraph::build(&g, &cfg);
            let sp = pg
                .stratified_params()
                .unwrap_or_else(|| panic!("{rep:?}: expected a stratified build"));
            assert!(sp.n_strata() > 1, "{rep:?}");
            // Every stratum-0 vertex out-ranks every base-stratum vertex.
            let top_min = (0..pg.len())
                .filter(|&v| sp.assign()[v] == 0)
                .map(|v| g.degree(v as u32))
                .min()
                .unwrap();
            let base_max = (0..pg.len())
                .filter(|&v| sp.assign()[v] as usize == sp.n_strata() - 1)
                .map(|v| g.degree(v as u32))
                .max()
                .unwrap();
            assert!(
                top_min >= base_max,
                "{rep:?}: stratum 0 min degree {top_min} < base max {base_max}"
            );
            for (u, v) in g.edges().take(200) {
                let e = pg.estimate_intersection(u, v);
                assert!(e.is_finite(), "{rep:?} ({u},{v}): {e}");
                let j = pg.estimate_jaccard(u, v);
                assert!((0.0..=1.0).contains(&j), "{rep:?} ({u},{v}): J={j}");
            }
            // Same total budget discipline as the uniform planner (plus
            // the same word-granularity slack the uniform test allows).
            let slack = pg.len() * 32 + 64;
            assert!(
                pg.memory_bytes()
                    <= (g.memory_bytes() as f64 * 0.25) as usize + slack + pg.len() * 4,
                "{rep:?}: {} over budget",
                pg.memory_bytes()
            );
        }
    }

    #[test]
    fn stratified_stream_from_matches_build() {
        // The streaming path must land exactly where a from-scratch
        // stratified build does — per-set geometry is fixed by the
        // degree-provisioned plan, so this only holds when both sides
        // resolve the same plan; stream_from(build target sizes) does.
        let g = gen::erdos_renyi_gnm(90, 1400, 23);
        let edges = g.edge_list();
        let split = edges.len() / 2;
        for rep in all_reps() {
            let cfg = PgConfig::stratified(rep, 0.3, pg_sketch::StrataSpec::skewed_default());
            let full = ProbGraph::build(&g, &cfg);
            let Some(sp) = full.stratified_params() else {
                continue;
            };
            // Seed the incremental graph with the *resolved* geometry
            // (streaming cannot re-derive degree ranks from an empty
            // graph), then replay the edges.
            let mut inc = ProbGraph::build_rows_stratified(
                g.num_vertices(),
                sp.clone(),
                cfg.bf_estimator,
                cfg.seed,
                |_| &[][..],
            );
            inc.apply_batch(&edges[..split]);
            inc.apply_batch(&edges[split..]);
            for v in 0..g.num_vertices() {
                assert_eq!(inc.set_size(v), full.set_size(v), "{rep:?} v={v}");
            }
            for (u, v) in g.edges().take(250) {
                assert_eq!(
                    inc.estimate_intersection(u, v),
                    full.estimate_intersection(u, v),
                    "{rep:?} ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn stratified_row_builds_are_row_identical_to_full_build() {
        // The exchange property, stratified: sub-stores built over row
        // ranges with the sliced assignment match the full build row for
        // row.
        let g = gen::kronecker(9, 8, 5);
        let cfg = PgConfig::stratified(
            Representation::Bloom { b: 2 },
            0.25,
            pg_sketch::StrataSpec::skewed_default(),
        );
        let full = ProbGraph::build(&g, &cfg);
        let sp = full.stratified_params().expect("stratified build").clone();
        let mid = g.num_vertices() / 2;
        let mk = |lo: usize, hi: usize| {
            let sub = pg_sketch::StratifiedParams::new(
                sp.strata().to_vec(),
                sp.assign()[lo..hi].to_vec(),
            );
            ProbGraph::build_rows_stratified(hi - lo, sub, cfg.bf_estimator, cfg.seed, |i| {
                g.neighbors((lo + i) as u32)
            })
        };
        let lo_half = mk(0, mid);
        let hi_half = mk(mid, g.num_vertices());
        let (SketchStoreIn::Bloom(fc), SketchStoreIn::Bloom(lc), SketchStoreIn::Bloom(hc)) =
            (full.store(), lo_half.store(), hi_half.store())
        else {
            panic!("expected Bloom stores");
        };
        for v in 0..g.num_vertices() {
            let (part, row) = if v < mid { (lc, v) } else { (hc, v - mid) };
            assert_eq!(fc.words(v), part.words(row), "v={v}");
        }
    }

    #[test]
    fn empty_graph_builds_truly_empty_probgraph() {
        let g = pg_graph::CsrGraph::from_edges(0, &[]);
        for rep in all_reps() {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.1));
            assert_eq!(pg.len(), 0, "{rep:?}");
            assert!(pg.is_empty(), "{rep:?}");
        }
        // Same for the DAG form.
        let dag = pg_graph::orient_by_degree(&g);
        let pg = ProbGraph::build_dag(&dag, 0, &PgConfig::new(Representation::OneHash, 0.25));
        assert!(pg.is_empty());
    }
}
