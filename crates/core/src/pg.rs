//! The ProbGraph representation (§V of the paper).
//!
//! A [`ProbGraph`] is a collection of probabilistic sketches, one per
//! vertex set (full neighborhoods `N_v`, or oriented out-neighborhoods
//! `N⁺_v` for the clique algorithms), built under a storage budget
//! `s ∈ [0, 1]` relative to the CSR footprint. The user picks a
//! [`Representation`] and, for Bloom filters, a [`BfEstimator`]; the paper
//! shows no single choice wins everywhere (§VIII-B).

use pg_graph::{CsrGraph, OrientedDag, VertexId};
use pg_sketch::{
    BloomCollection, BottomKCollection, BudgetPlan, KmvCollection, MinHashCollection, SketchParams,
};

/// Which probabilistic set representation backs the ProbGraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Representation {
    /// Bloom filters with `b` hash functions (§IV-B).
    Bloom {
        /// Number of hash functions; the paper finds `b ∈ {1, 2}` best.
        b: usize,
    },
    /// k-hash MinHash (§IV-C) — the MLE estimator with exponential bounds.
    KHash,
    /// 1-hash / bottom-k MinHash (§IV-D) — cheapest construction.
    OneHash,
    /// K-Minimum-Values (§IX).
    Kmv,
}

/// Which Bloom-filter intersection estimator to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BfEstimator {
    /// `|X∩Y|̂_AND` (Eq. 2) — the paper's default.
    #[default]
    And,
    /// `|X∩Y|̂_L` (Eq. 4) — better on very dense graphs (§VIII-B).
    Limit,
    /// `|X∩Y|̂_OR` (Eq. 29) — the prior-work estimator, for comparison.
    Or,
}

/// Configuration for [`ProbGraph::build`] — mirrors
/// `ProbGraph(g, BF, 0.25)` from Listing 6.
#[derive(Clone, Copy, Debug)]
pub struct PgConfig {
    /// The chosen representation.
    pub representation: Representation,
    /// Storage budget `s ∈ [0, 1]` as a fraction of the CSR bytes (§V-A).
    pub budget: f64,
    /// Master RNG seed for all hash functions.
    pub seed: u64,
    /// Bloom estimator variant (ignored for MinHash/KMV).
    pub bf_estimator: BfEstimator,
}

impl PgConfig {
    /// A configuration with the default seed and the AND estimator.
    pub fn new(representation: Representation, budget: f64) -> Self {
        PgConfig {
            representation,
            budget,
            seed: 0xC0FF_EE00,
            bf_estimator: BfEstimator::And,
        }
    }

    /// Overrides the hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the Bloom estimator variant.
    pub fn with_bf_estimator(mut self, e: BfEstimator) -> Self {
        self.bf_estimator = e;
        self
    }
}

/// The per-set sketches backing a [`ProbGraph`].
#[derive(Clone, Debug)]
pub enum SketchStore {
    /// Flat Bloom filters.
    Bloom(BloomCollection),
    /// Flat k-hash signatures.
    KHash(MinHashCollection),
    /// Flat bottom-k samples.
    OneHash(BottomKCollection),
    /// KMV sketches.
    Kmv(KmvCollection),
}

/// The probabilistic graph representation: one sketch per vertex set plus
/// the exact set sizes (degrees are free in CSR, and the MinHash/OR
/// estimators use them).
#[derive(Clone, Debug)]
pub struct ProbGraph {
    store: SketchStore,
    sizes: Vec<u32>,
    bf_estimator: BfEstimator,
    params: SketchParams,
}

impl ProbGraph {
    /// Builds sketches of the full neighborhoods `N_v` of `g`
    /// (Listing 6: `ProbGraph pg = ProbGraph(g, BF, 0.25)`).
    pub fn build(g: &CsrGraph, cfg: &PgConfig) -> ProbGraph {
        let n = g.num_vertices();
        if n == 0 {
            return Self::build_over(1, g.memory_bytes().max(1), |_| &[][..], cfg);
        }
        Self::build_over(n, g.memory_bytes(), |v| g.neighbors(v as VertexId), cfg)
    }

    /// Builds sketches of the oriented out-neighborhoods `N⁺_v` of a
    /// degree-ordered DAG — the sets Triangle/4-Clique Counting intersect
    /// (Listings 1–2). `base_bytes` should be the CSR footprint of the
    /// original graph so the budget means the same thing as in
    /// [`ProbGraph::build`].
    pub fn build_dag(dag: &OrientedDag, base_bytes: usize, cfg: &PgConfig) -> ProbGraph {
        let n = dag.num_vertices();
        if n == 0 {
            return Self::build_over(1, base_bytes.max(1), |_| &[][..], cfg);
        }
        Self::build_over(n, base_bytes, |v| dag.neighbors_plus(v as VertexId), cfg)
    }

    /// Low-level constructor over arbitrary sorted sets.
    pub fn build_over<'a, F>(n_sets: usize, base_bytes: usize, set: F, cfg: &PgConfig) -> ProbGraph
    where
        F: Fn(usize) -> &'a [u32] + Sync,
    {
        let plan = BudgetPlan::new(base_bytes, n_sets, cfg.budget);
        let (params, store) = match cfg.representation {
            Representation::Bloom { b } => {
                let params = plan.bloom(b);
                let SketchParams::Bloom { bits_per_set, .. } = params else {
                    unreachable!()
                };
                (
                    params,
                    SketchStore::Bloom(BloomCollection::build(
                        n_sets,
                        bits_per_set,
                        b,
                        cfg.seed,
                        &set,
                    )),
                )
            }
            Representation::KHash => {
                let params = plan.khash();
                let SketchParams::KHash { k } = params else {
                    unreachable!()
                };
                (
                    params,
                    SketchStore::KHash(MinHashCollection::build(n_sets, k, cfg.seed, &set)),
                )
            }
            Representation::OneHash => {
                let params = plan.onehash();
                let SketchParams::OneHash { k } = params else {
                    unreachable!()
                };
                (
                    params,
                    SketchStore::OneHash(BottomKCollection::build(n_sets, k, cfg.seed, &set)),
                )
            }
            Representation::Kmv => {
                let params = plan.kmv();
                let SketchParams::Kmv { k } = params else {
                    unreachable!()
                };
                (
                    params,
                    SketchStore::Kmv(KmvCollection::build(n_sets, k, cfg.seed, &set)),
                )
            }
        };
        let mut sizes = vec![0u32; n_sets];
        pg_parallel::parallel_fill_with(&mut sizes, |i| set(i).len() as u32);
        ProbGraph {
            store,
            sizes,
            bf_estimator: cfg.bf_estimator,
            params,
        }
    }

    /// Number of sketched sets.
    #[inline]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when no sets are sketched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Exact size of set `i` (the degree, recorded at build time).
    #[inline]
    pub fn set_size(&self, i: usize) -> usize {
        self.sizes[i] as usize
    }

    /// The resolved sketch parameters (B and b, or k).
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// The underlying sketches (for algorithms needing membership queries
    /// or raw samples, e.g. 4-clique counting).
    #[inline]
    pub fn store(&self) -> &SketchStore {
        &self.store
    }

    /// `|N_u ∩ N_v|̂` — the drop-in replacement for the exact intersection
    /// cardinality (the blue operations in the paper's listings).
    pub fn estimate_intersection(&self, u: VertexId, v: VertexId) -> f64 {
        let (i, j) = (u as usize, v as usize);
        match &self.store {
            SketchStore::Bloom(c) => match self.bf_estimator {
                BfEstimator::And => c.estimate_and(i, j),
                BfEstimator::Limit => c.estimate_limit(i, j),
                BfEstimator::Or => {
                    c.estimate_or(i, j, self.sizes[i] as usize, self.sizes[j] as usize)
                }
            },
            SketchStore::KHash(c) => {
                c.estimate_intersection(i, j, self.sizes[i] as usize, self.sizes[j] as usize)
            }
            SketchStore::OneHash(c) => c.estimate_intersection(i, j),
            SketchStore::Kmv(c) => c.estimate_intersection(i, j),
        }
    }

    /// `Ĵ(N_u, N_v)` — approximate Jaccard similarity (Listing 3 / 6).
    ///
    /// MinHash stores estimate Jaccard natively; Bloom/KMV derive it from
    /// the intersection estimate and the exact sizes, clamped to `[0, 1]`.
    pub fn estimate_jaccard(&self, u: VertexId, v: VertexId) -> f64 {
        let (i, j) = (u as usize, v as usize);
        match &self.store {
            SketchStore::KHash(c) => c.estimate_jaccard(i, j),
            SketchStore::OneHash(c) => c.estimate_jaccard(i, j),
            _ => {
                let inter = self.estimate_intersection(u, v);
                let (nx, ny) = (self.sizes[i] as f64, self.sizes[j] as f64);
                let union = nx + ny - inter;
                if union <= 0.0 {
                    // Degenerate: both empty ⇒ similarity 0 by convention.
                    if nx + ny == 0.0 {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    (inter / union).clamp(0.0, 1.0)
                }
            }
        }
    }

    /// Bytes of additional storage used by the sketches — the quantity the
    /// paper's "relative memory" axis reports against the budget.
    pub fn memory_bytes(&self) -> usize {
        let store = match &self.store {
            SketchStore::Bloom(c) => c.memory_bytes(),
            SketchStore::KHash(c) => c.memory_bytes(),
            SketchStore::OneHash(c) => c.memory_bytes(),
            SketchStore::Kmv(c) => c.memory_bytes(),
        };
        store + self.sizes.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::intersect_card;
    use pg_graph::gen;

    fn all_reps() -> Vec<Representation> {
        vec![
            Representation::Bloom { b: 2 },
            Representation::KHash,
            Representation::OneHash,
            Representation::Kmv,
        ]
    }

    #[test]
    fn builds_under_budget_for_every_representation() {
        let g = gen::kronecker(9, 8, 3);
        for rep in all_reps() {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.25));
            assert_eq!(pg.len(), g.num_vertices());
            // Sizes must equal degrees.
            for v in 0..g.num_vertices() {
                assert_eq!(pg.set_size(v), g.degree(v as u32), "{rep:?}");
            }
            // Budget respected within word-granularity and per-sketch
            // bookkeeping slack.
            let slack = pg.len() * 32 + 64;
            assert!(
                pg.memory_bytes()
                    <= (g.memory_bytes() as f64 * 0.25) as usize + slack + pg.len() * 4,
                "{rep:?}: {} vs budget {}",
                pg.memory_bytes(),
                (g.memory_bytes() as f64 * 0.25) as usize
            );
        }
    }

    #[test]
    fn estimates_correlate_with_truth() {
        // On a dense ER graph all estimators must track the exact
        // intersection with errors far below the degree scale.
        let g = gen::erdos_renyi_gnm(300, 300 * 40, 7);
        for rep in all_reps() {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.33));
            let mut total_rel_err = 0.0;
            let mut pairs = 0;
            for (u, v) in g.edges().take(400) {
                let exact = intersect_card(g.neighbors(u), g.neighbors(v));
                if exact == 0 {
                    continue;
                }
                let est = pg.estimate_intersection(u, v);
                total_rel_err += (est - exact as f64).abs() / exact as f64;
                pairs += 1;
            }
            let mean_err = total_rel_err / pairs as f64;
            assert!(mean_err < 0.8, "{rep:?}: mean relative error {mean_err}");
        }
    }

    #[test]
    fn jaccard_estimates_are_probabilities() {
        let g = gen::kronecker(8, 8, 1);
        for rep in all_reps() {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.25));
            for (u, v) in g.edges().take(200) {
                let j = pg.estimate_jaccard(u, v);
                assert!((0.0..=1.0).contains(&j), "{rep:?}: J={j}");
            }
        }
    }

    #[test]
    fn bf_estimator_variants_differ_but_agree_in_scale() {
        let g = gen::erdos_renyi_gnm(200, 6000, 5);
        let base = PgConfig::new(Representation::Bloom { b: 2 }, 0.33);
        let and = ProbGraph::build(&g, &base);
        let lim = ProbGraph::build(&g, &base.with_bf_estimator(BfEstimator::Limit));
        let or = ProbGraph::build(&g, &base.with_bf_estimator(BfEstimator::Or));
        let (u, v) = g.edges().next().unwrap();
        let exact = intersect_card(g.neighbors(u), g.neighbors(v)) as f64;
        for (name, pg) in [("AND", &and), ("L", &lim), ("OR", &or)] {
            let e = pg.estimate_intersection(u, v);
            assert!(
                e >= 0.0 && (e - exact).abs() < exact.max(8.0) * 1.5,
                "{name}: est={e} exact={exact}"
            );
        }
    }

    #[test]
    fn dag_variant_sketches_out_neighborhoods() {
        let g = gen::kronecker(8, 8, 2);
        let dag = pg_graph::orient_by_degree(&g);
        let pg = ProbGraph::build_dag(
            &dag,
            g.memory_bytes(),
            &PgConfig::new(Representation::OneHash, 0.25),
        );
        for v in 0..g.num_vertices() {
            assert_eq!(pg.set_size(v), dag.out_degree(v as u32));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gen::kronecker(7, 6, 9);
        let cfg = PgConfig::new(Representation::KHash, 0.2).with_seed(42);
        let a = ProbGraph::build(&g, &cfg);
        let b = ProbGraph::build(&g, &cfg);
        let (u, v) = g.edges().next().unwrap();
        assert_eq!(a.estimate_intersection(u, v), b.estimate_intersection(u, v));
    }

    #[test]
    fn empty_graph_does_not_crash() {
        let g = pg_graph::CsrGraph::from_edges(0, &[]);
        let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 1 }, 0.1));
        assert_eq!(pg.len(), 1); // floor of one set keeps the API total
    }
}
