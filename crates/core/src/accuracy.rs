//! Accuracy metrics of §VIII-A.
//!
//! The paper reports two quantities: the *relative count*
//! `cnt_PG / cnt_EX` (the y-axis of Figs. 4–7; 1.0 = perfect) and the
//! *relative difference* `|cnt_PG − cnt_EX| / cnt_EX` (Fig. 3's boxplot
//! metric). This module also provides the Fig. 3 experiment kernel: the
//! per-adjacent-pair error distribution of a `|N_u ∩ N_v|` estimator.

use crate::intersect::intersect_card;
use crate::pg::ProbGraph;
use pg_graph::CsrGraph;
use pg_parallel::parallel_init;

/// `cnt_PG / cnt_EX`; by convention 1.0 when both are zero and ∞-safe.
pub fn relative_count(estimate: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if estimate == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        estimate / exact
    }
}

/// `|cnt_PG − cnt_EX| / cnt_EX` (the paper's accuracy expression); 0 when
/// both are zero.
pub fn relative_error(estimate: f64, exact: f64) -> f64 {
    if exact == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - exact).abs() / exact
    }
}

/// Fig. 3 kernel: relative differences `| |X∩Y|̂ − |X∩Y| | / |X∩Y|` of the
/// configured estimator over **all adjacent vertex pairs** with a non-zero
/// exact intersection (zero-intersection pairs have no relative error
/// scale and are skipped, as in the paper's plots).
pub fn edgewise_intersection_errors(g: &CsrGraph, pg: &ProbGraph) -> Vec<f64> {
    let edges = g.edge_list();
    let errs: Vec<f64> = parallel_init(edges.len(), |i| {
        let (u, v) = edges[i];
        let exact = intersect_card(g.neighbors(u), g.neighbors(v));
        if exact == 0 {
            return f64::NAN; // marker: skip
        }
        let est = pg.estimate_intersection(u, v).max(0.0);
        (est - exact as f64).abs() / exact as f64
    });
    errs.into_iter().filter(|e| !e.is_nan()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg::{PgConfig, Representation};
    use pg_graph::gen;
    use pg_stats::Summary;

    #[test]
    fn relative_count_conventions() {
        assert_eq!(relative_count(50.0, 100.0), 0.5);
        assert_eq!(relative_count(0.0, 0.0), 1.0);
        assert_eq!(relative_count(5.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn relative_error_conventions() {
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
    }

    #[test]
    fn edgewise_errors_have_low_median_at_33pct_budget() {
        // The §VIII-B claim: medians below ≈25 % for most graphs at
        // s = 33 %. Use a dense stand-in where intersections are large,
        // and the low-b Bloom setting the paper recommends (§VIII-G:
        // "PG benefits from low b ∈ {1, 2}").
        let g = gen::erdos_renyi_gnm(300, 300 * 60, 23);
        let cases = [
            (Representation::Bloom { b: 1 }, 0.50),
            (Representation::OneHash, 0.30),
            (Representation::KHash, 0.40),
        ];
        for (rep, limit) in cases {
            let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.33));
            let errs = edgewise_intersection_errors(&g, &pg);
            assert!(!errs.is_empty());
            let med = Summary::of(&errs).median;
            assert!(med < limit, "{rep:?}: median relative error {med}");
        }
    }

    #[test]
    fn errors_skip_zero_intersection_pairs() {
        // Triangle-free graph: every adjacent pair has zero intersection.
        let g = gen::grid(6, 6);
        let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 1 }, 0.25));
        assert!(edgewise_intersection_errors(&g, &pg).is_empty());
    }

    #[test]
    fn bigger_budget_means_lower_error() {
        let g = gen::erdos_renyi_gnm(300, 300 * 30, 31);
        let small = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 2 }, 0.05));
        let large = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 2 }, 0.33));
        let e_small = Summary::of(&edgewise_intersection_errors(&g, &small)).median;
        let e_large = Summary::of(&edgewise_intersection_errors(&g, &large)).median;
        assert!(
            e_large < e_small,
            "s=0.33 median {e_large} should beat s=0.05 median {e_small}"
        );
    }
}
