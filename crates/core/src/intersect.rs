//! Exact set-intersection kernels over sorted vertex-ID arrays.
//!
//! Fig. 1 panel 2 of the paper: the *merge* kernel (`O(d_u + d_v)`, best
//! when the sets have similar sizes) and the *galloping* kernel
//! (`O(d_u log d_v)` for `d_u ≪ d_v`). [`intersect_card`] picks between
//! them with the standard size-ratio heuristic, which is what the tuned
//! GMS/GAP baselines do.

/// Size-ratio threshold above which galloping beats merging.
const GALLOP_RATIO: usize = 32;

/// Merge intersection count of two sorted ascending slices.
///
/// Branchless inner loop: the three-way `match` of the textbook merge
/// mispredicts on random data (the branch pattern *is* the data); the
/// comparison-driven index bumps below compile to `setcc`/`cmov`, so the
/// only branch left is the loop condition.
pub fn merge_count(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut c = 0;
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        c += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    c
}

/// Galloping (exponential-search) intersection count: for each element of
/// the smaller set, locate it in the larger by doubling then binary search.
pub fn gallop_count(small: &[u32], large: &[u32]) -> usize {
    debug_assert!(small.len() <= large.len());
    let mut c = 0;
    let mut lo = 0usize;
    for &x in small {
        if lo >= large.len() {
            break;
        }
        // Exponential probe from the last position: find a window
        // [lo, hi) guaranteed to contain the insertion point of x.
        let mut bound = 1usize;
        while lo + bound < large.len() && large[lo + bound] < x {
            bound <<= 1;
        }
        let hi = (lo + bound + 1).min(large.len());
        match large[lo..hi].binary_search(&x) {
            Ok(pos) => {
                c += 1;
                lo += pos + 1;
            }
            Err(pos) => {
                lo += pos;
            }
        }
    }
    c
}

/// Exact `|A ∩ B|` with the merge/gallop selection heuristic of the tuned
/// baselines.
#[inline]
pub fn intersect_card(a: &[u32], b: &[u32]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len().max(1) >= GALLOP_RATIO {
        gallop_count(small, large)
    } else {
        merge_count(small, large)
    }
}

/// Materialized intersection (for 4-clique counting, which iterates the
/// common elements).
pub fn intersect_set(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Visits every common element (needed by Adamic–Adar / Resource
/// Allocation, which weight each shared neighbor individually).
pub fn for_each_common<F: FnMut(u32)>(a: &[u32], b: &[u32], mut f: F) {
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[u32], b: &[u32]) -> usize {
        a.iter().filter(|x| b.contains(x)).count()
    }

    #[test]
    fn merge_matches_naive() {
        let a: Vec<u32> = (0..100).step_by(3).collect();
        let b: Vec<u32> = (0..100).step_by(5).collect();
        assert_eq!(merge_count(&a, &b), naive(&a, &b));
    }

    #[test]
    fn gallop_matches_naive() {
        let small: Vec<u32> = vec![3, 50, 51, 99, 500];
        let large: Vec<u32> = (0..1000).step_by(2).collect();
        assert_eq!(gallop_count(&small, &large), naive(&small, &large));
    }

    #[test]
    fn gallop_edge_positions() {
        let large: Vec<u32> = (10..20).collect();
        assert_eq!(gallop_count(&[10], &large), 1); // first
        assert_eq!(gallop_count(&[19], &large), 1); // last
        assert_eq!(gallop_count(&[5], &large), 0); // below
        assert_eq!(gallop_count(&[25], &large), 0); // above
        assert_eq!(gallop_count(&[5, 10, 15, 19, 25], &large), 3);
    }

    #[test]
    fn auto_dispatch_agrees_with_both() {
        // Exhaustive-ish randomized cross-check of all three kernels.
        let mut seed = 99u64;
        for trial in 0..200 {
            let la = (pg_hash::splitmix64(&mut seed) % 200) as usize;
            let lb = (pg_hash::splitmix64(&mut seed) % 2000) as usize;
            let mut a: Vec<u32> = (0..la)
                .map(|_| (pg_hash::splitmix64(&mut seed) % 3000) as u32)
                .collect();
            let mut b: Vec<u32> = (0..lb)
                .map(|_| (pg_hash::splitmix64(&mut seed) % 3000) as u32)
                .collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let want = naive(&a, &b);
            assert_eq!(intersect_card(&a, &b), want, "trial {trial}");
            assert_eq!(merge_count(&a, &b), want);
            let (s, l) = if a.len() <= b.len() {
                (&a, &b)
            } else {
                (&b, &a)
            };
            assert_eq!(gallop_count(s, l), want);
        }
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(intersect_card(&[], &[1, 2, 3]), 0);
        assert_eq!(intersect_card(&[], &[]), 0);
        assert_eq!(gallop_count(&[], &[1]), 0);
    }

    #[test]
    fn intersect_set_materializes() {
        let mut out = Vec::new();
        intersect_set(&[1, 3, 5, 7], &[3, 4, 5, 6], &mut out);
        assert_eq!(out, vec![3, 5]);
        // Reuse clears previous contents.
        intersect_set(&[1], &[2], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn for_each_common_visits_in_order() {
        let mut seen = Vec::new();
        for_each_common(&[1, 2, 3, 9], &[2, 3, 4, 9], |x| seen.push(x));
        assert_eq!(seen, vec![2, 3, 9]);
    }
}
