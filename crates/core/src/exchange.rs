//! # exchange — multi-process sketch exchange over the snapshot wire format
//!
//! The ProbGraph paper's communication-volume argument (§V-C) is that a
//! distributed graph-mining round ships **sketches** of boundary
//! neighborhoods instead of the exact adjacency lists, cutting the bytes on
//! the wire by the sketch-compression factor. This module makes that claim
//! measurable instead of modeled: it partitions a degree-oriented DAG by an
//! externally supplied assignment, forks one **worker process per part**
//! connected by Unix-domain socket pairs, runs one neighborhood-exchange
//! round, and has every worker compute its partial of the distributed
//! triangle count — while counting the actual bytes crossing each socket.
//!
//! ## What is shipped, and the dedupe rule
//!
//! Worker `q` sends worker `r` the **ship set**
//! `S(q→r) = { u : parts[u] = q and u ∈ N⁺(v) for some v with parts[v] = r }`
//! — each boundary vertex appears **once per (vertex, remote part)**, no
//! matter how many cut edges reference it. Both the sketch round and the
//! exact-adjacency round (shipped in the same exchange so the reduction is
//! measured on identical traffic patterns) use the same ship sets, so the
//! measured reduction isolates the per-set payload size.
//!
//! ## Wire format
//!
//! Payloads are the **snapshot format** of [`crate::snapshot`]: worker `q`
//! slices `S(q→r)` into chunks of [`ExchangeOptions::chunk_sets`] rows,
//! rebuilds each chunk's sub-store with [`ProbGraph::build_rows`] (per-row
//! sketch builds are independent, so the rows are bit-identical to the
//! coordinator's full build under the same params and seed), and ships
//! `snapshot_to_bytes` of it. Receivers land each payload in an
//! [`AlignedBytes`] buffer and validate it with the hostile-bytes loader
//! ([`ProbGraphIn::from_snapshot_bytes_borrowed`]) — zero-copy, typed
//! errors, never a panic — then cross-check params, seed, estimator, row
//! count, and recorded set sizes against the expected chunk.
//!
//! Every payload is preceded by a 40-byte frame header:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `"PGXF"` |
//! | 4      | 4    | sender part (u32 LE) |
//! | 8      | 4    | receiver part (u32 LE) |
//! | 12     | 4    | payload kind: 0 = sketch snapshot, 1 = exact rows |
//! | 16     | 4    | chunk index |
//! | 20     | 4    | total chunks for this (pair, kind); 0 = empty ship set |
//! | 24     | 8    | payload length in bytes (u64 LE) |
//! | 32     | 8    | xxh64 checksum of bytes 0..32 |
//!
//! An empty ship set still costs one frame (`n_chunks = 0`, no payload) so
//! the pair handshake stays uniform.
//!
//! ## Determinism
//!
//! Partial counts are summed **sequentially over owned vertices in
//! ascending id order**, and the coordinator sums partials in part order.
//! [`single_process_partials`] replays the identical grouping in one
//! process, so the distributed total is asserted **bit-equal** to the
//! single-process estimate — not merely close.
//!
//! ## Deadlock freedom
//!
//! Each worker walks its peers in ascending part id; within a pair the
//! lower part sends first. Every worker therefore visits pairs in global
//! lexicographic `(min, max)` order, so the smallest uncompleted pair
//! always has both endpoints ready — no waiting cycle can form. Socket
//! read/write timeouts ([`ExchangeOptions::timeout`]) are the backstop for
//! crashed peers, and the coordinator closing its copies of the mesh makes
//! a dead worker's sockets read as EOF rather than hang.

use crate::oracle::{IntersectionOracle, OracleVisitor};
use crate::pg::{build_store, gather_store_into, BfEstimator, ProbGraph, ProbGraphIn};
use crate::snapshot::{AlignedBytes, SnapshotError};
use pg_graph::OrientedDag;
use pg_hash::xxh64;
use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use pg_sketch::{SketchParams, StratifiedParams};

/// Frame magic: "PGXF" (ProbGraph eXchange Frame).
pub const FRAME_MAGIC: [u8; 4] = *b"PGXF";
/// Fixed frame header length in bytes.
pub const FRAME_HEADER_LEN: usize = 40;
/// Seed for the header checksum (shared with the snapshot format).
pub const FRAME_CHECKSUM_SEED: u64 = crate::snapshot::CHECKSUM_SEED;
/// Hard cap on a single frame payload — a hostile or corrupted length
/// field must not drive a multi-gigabyte allocation.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 31;
/// Default number of sketch rows per payload chunk.
pub const DEFAULT_CHUNK_SETS: usize = 512;

/// Worker exit codes (observable through [`ExchangeError::WorkerExit`]).
const EXIT_KILLED: i32 = 43;
const EXIT_TRUNCATED: i32 = 44;
const EXIT_PANIC: i32 = 101;
const EXIT_REPORT_FAILED: i32 = 102;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadKind {
    /// A snapshot-format sketch sub-store chunk.
    Sketch = 0,
    /// Exact adjacency rows (`encode_exact_rows`).
    ExactRows = 1,
}

/// Parsed frame header (see the module-level wire-format table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sending part id.
    pub from: u32,
    /// Receiving part id.
    pub to: u32,
    /// Payload kind (0 = sketch, 1 = exact rows).
    pub kind: u32,
    /// Chunk index within this (pair, kind).
    pub chunk: u32,
    /// Total chunks for this (pair, kind); 0 means an empty ship set.
    pub n_chunks: u32,
    /// Payload length in bytes.
    pub payload_len: u64,
}

/// Encodes a frame header into its 40-byte wire form.
pub fn encode_frame_header(h: &FrameHeader) -> [u8; FRAME_HEADER_LEN] {
    let mut out = [0u8; FRAME_HEADER_LEN];
    out[0..4].copy_from_slice(&FRAME_MAGIC);
    out[4..8].copy_from_slice(&h.from.to_le_bytes());
    out[8..12].copy_from_slice(&h.to.to_le_bytes());
    out[12..16].copy_from_slice(&h.kind.to_le_bytes());
    out[16..20].copy_from_slice(&h.chunk.to_le_bytes());
    out[20..24].copy_from_slice(&h.n_chunks.to_le_bytes());
    out[24..32].copy_from_slice(&h.payload_len.to_le_bytes());
    let sum = xxh64(&out[..32], FRAME_CHECKSUM_SEED);
    out[32..40].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Parses and validates a 40-byte frame header: magic, checksum, and the
/// payload-length cap. Never panics on hostile bytes.
pub fn parse_frame_header(bytes: &[u8; FRAME_HEADER_LEN]) -> Result<FrameHeader, ExchangeError> {
    if bytes[0..4] != FRAME_MAGIC {
        return Err(ExchangeError::Frame("bad frame magic".into()));
    }
    let stored = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
    if xxh64(&bytes[..32], FRAME_CHECKSUM_SEED) != stored {
        return Err(ExchangeError::Frame(
            "frame header checksum mismatch".into(),
        ));
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    let h = FrameHeader {
        from: u32_at(4),
        to: u32_at(8),
        kind: u32_at(12),
        chunk: u32_at(16),
        n_chunks: u32_at(20),
        payload_len: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
    };
    if h.kind > PayloadKind::ExactRows as u32 {
        return Err(ExchangeError::Frame(format!(
            "unknown payload kind {}",
            h.kind
        )));
    }
    if h.payload_len > MAX_FRAME_PAYLOAD {
        return Err(ExchangeError::Frame(format!(
            "payload length {} exceeds cap {}",
            h.payload_len, MAX_FRAME_PAYLOAD
        )));
    }
    if h.n_chunks == 0 && (h.chunk != 0 || h.payload_len != 0) {
        return Err(ExchangeError::Frame(
            "empty-ship-set frame must have chunk 0 and no payload".into(),
        ));
    }
    if h.n_chunks > 0 && h.chunk >= h.n_chunks {
        return Err(ExchangeError::Frame(format!(
            "chunk index {} out of range (n_chunks {})",
            h.chunk, h.n_chunks
        )));
    }
    Ok(h)
}

/// Writes one frame (header + payload) to `w`.
pub fn write_frame(w: &mut impl Write, h: &FrameHeader, payload: &[u8]) -> io::Result<()> {
    debug_assert_eq!(h.payload_len as usize, payload.len());
    w.write_all(&encode_frame_header(h))?;
    w.write_all(payload)
}

/// Reads one frame from `r`: header validation first, then the payload
/// into an 8-byte-aligned buffer ready for zero-copy snapshot decoding.
/// Truncation anywhere — mid-header or mid-payload — surfaces as a typed
/// [`ExchangeError`], never a panic.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameHeader, AlignedBytes), ExchangeError> {
    let mut hdr = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut hdr)
        .map_err(|e| ExchangeError::Frame(format!("truncated frame header: {e}")))?;
    let h = parse_frame_header(&hdr)?;
    let mut payload = AlignedBytes::zeroed(h.payload_len as usize);
    r.read_exact(&mut payload)
        .map_err(|e| ExchangeError::Frame(format!("truncated frame payload: {e}")))?;
    Ok((h, payload))
}

/// Encodes the exact-adjacency payload for `rows`:
/// `[n_rows u32][len_i u32 × n][neighbors u32 × Σ len_i]`, little-endian.
/// This is the baseline the sketch round is measured against — same ship
/// sets, exact `N⁺` lists instead of sketches.
pub fn encode_exact_rows(dag: &OrientedDag, rows: &[u32]) -> Vec<u8> {
    let total: usize = rows.iter().map(|&u| dag.out_degree(u)).sum();
    let mut out = Vec::with_capacity(4 + 4 * rows.len() + 4 * total);
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for &u in rows {
        out.extend_from_slice(&(dag.out_degree(u) as u32).to_le_bytes());
    }
    for &u in rows {
        for &v in dag.neighbors_plus(u) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Validates an exact-rows payload against the rows the receiver expects:
/// row count, per-row lengths, and the neighbor ids themselves.
pub fn check_exact_rows(
    payload: &[u8],
    dag: &OrientedDag,
    rows: &[u32],
) -> Result<(), ExchangeError> {
    let bad = |d: String| Err(ExchangeError::Frame(d));
    if payload.len() < 4 {
        return bad("exact payload shorter than its row count".into());
    }
    let n = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    if n != rows.len() {
        return bad(format!(
            "exact payload has {n} rows, expected {}",
            rows.len()
        ));
    }
    let lens_end = 4 + 4 * n;
    if payload.len() < lens_end {
        return bad("exact payload truncated in length table".into());
    }
    let mut off = lens_end;
    for (i, &u) in rows.iter().enumerate() {
        let len = u32::from_le_bytes(payload[4 + 4 * i..8 + 4 * i].try_into().unwrap()) as usize;
        if len != dag.out_degree(u) {
            return bad(format!(
                "exact row {u} has length {len}, expected {}",
                dag.out_degree(u)
            ));
        }
        if payload.len() < off + 4 * len {
            return bad("exact payload truncated in neighbor data".into());
        }
        for (j, &v) in dag.neighbors_plus(u).iter().enumerate() {
            let got = u32::from_le_bytes(payload[off + 4 * j..off + 4 * j + 4].try_into().unwrap());
            if got != v {
                return bad(format!("exact row {u} neighbor {j} is {got}, expected {v}"));
            }
        }
        off += 4 * len;
    }
    if off != payload.len() {
        return bad(format!(
            "exact payload has {} trailing bytes",
            payload.len() - off
        ));
    }
    Ok(())
}

/// Why an exchange failed. Every fault mode — truncated streams, corrupt
/// payloads, dead workers — maps to one of these; the coordinator never
/// panics and never leaks a child process.
#[derive(Debug)]
pub enum ExchangeError {
    /// An OS-level I/O failure (socket, fork).
    Io(io::Error),
    /// A malformed or truncated frame.
    Frame(String),
    /// A payload failed snapshot validation on the receiving side.
    Payload {
        /// The part whose payload failed validation.
        from: u32,
        /// What the validator rejected.
        detail: String,
    },
    /// A worker reported a typed failure over its coordinator link.
    Worker {
        /// The failing part.
        part: u32,
        /// The worker's error description.
        detail: String,
    },
    /// A worker exited without reporting a result.
    WorkerExit {
        /// The part that died.
        part: u32,
        /// Its exit code (negative = killed by that signal number).
        code: i32,
    },
    /// The two sides of the exchange disagree about what happened.
    Protocol(String),
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::Io(e) => write!(f, "exchange i/o error: {e}"),
            ExchangeError::Frame(d) => write!(f, "bad frame: {d}"),
            ExchangeError::Payload { from, detail } => {
                write!(f, "invalid payload from part {from}: {detail}")
            }
            ExchangeError::Worker { part, detail } => {
                write!(f, "worker {part} failed: {detail}")
            }
            ExchangeError::WorkerExit { part, code } => {
                write!(
                    f,
                    "worker {part} exited with code {code} before reporting a result"
                )
            }
            ExchangeError::Protocol(d) => write!(f, "protocol violation: {d}"),
        }
    }
}

impl std::error::Error for ExchangeError {}

impl From<io::Error> for ExchangeError {
    fn from(e: io::Error) -> Self {
        ExchangeError::Io(e)
    }
}

impl From<SnapshotError> for ExchangeError {
    fn from(e: SnapshotError) -> Self {
        ExchangeError::Payload {
            from: u32::MAX,
            detail: e.to_string(),
        }
    }
}

/// Fault injection for the exchange fault suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The given part exits before sending anything; peers see EOF.
    KillWorker {
        /// The part to kill.
        part: u32,
    },
    /// The given part flips a bit mid-payload in its first outgoing sketch
    /// chunk; the receiver's snapshot validation must reject it.
    CorruptPayload {
        /// The corrupting part.
        part: u32,
    },
    /// The given part sends a frame header, half the payload, then dies.
    TruncateStream {
        /// The truncating part.
        part: u32,
    },
}

/// Tuning and fault-injection knobs for [`run_exchange`].
#[derive(Clone, Debug)]
pub struct ExchangeOptions {
    /// Sketch rows per payload chunk (≥ 1).
    pub chunk_sets: usize,
    /// Socket read/write timeout — the backstop against hung peers.
    pub timeout: Duration,
    /// Optional injected fault.
    pub fault: Option<Fault>,
}

impl Default for ExchangeOptions {
    fn default() -> Self {
        ExchangeOptions {
            chunk_sets: DEFAULT_CHUNK_SETS,
            timeout: Duration::from_secs(30),
            fault: None,
        }
    }
}

/// What a successful exchange measured.
#[derive(Clone, Debug)]
pub struct ExchangeReport {
    /// Number of parts (worker processes).
    pub parts: usize,
    /// Per-part partial triangle counts, in part order.
    pub partials: Vec<f64>,
    /// Sum of the partials in part order — bit-equal to
    /// [`single_process_partials`] summed the same way.
    pub distributed_tc: f64,
    /// Bytes actually written to the socket for sketch frames, per
    /// `[from][to]` ordered part pair (frame headers included).
    pub sketch_pair_bytes: Vec<Vec<u64>>,
    /// Same, for the exact-adjacency frames.
    pub exact_pair_bytes: Vec<Vec<u64>>,
}

impl ExchangeReport {
    /// Total sketch bytes across all ordered pairs.
    pub fn sketch_total(&self) -> u64 {
        self.sketch_pair_bytes.iter().flatten().sum()
    }

    /// Total exact-adjacency bytes across all ordered pairs.
    pub fn exact_total(&self) -> u64 {
        self.exact_pair_bytes.iter().flatten().sum()
    }

    /// Measured communication reduction `exact / sketch`. When **both**
    /// totals are zero (single part, or an edgeless graph) there is no
    /// communication to reduce and the ratio is defined as `1.0`.
    pub fn reduction(&self) -> f64 {
        let exact = self.exact_total();
        let sketch = self.sketch_total();
        if exact == 0 && sketch == 0 {
            return 1.0;
        }
        exact as f64 / sketch as f64
    }
}

/// Computes every ship set `S(q→r)` in one `O(m log m)` pass:
/// `out[q][r]` is the ascending, deduplicated list of vertices owned by
/// `q` that appear in the `N⁺` row of at least one vertex owned by `r`.
/// Diagonal entries are empty.
pub fn ship_sets(dag: &OrientedDag, parts: &[u32], p: usize) -> Vec<Vec<Vec<u32>>> {
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); p * p];
    for v in 0..dag.num_vertices() {
        let r = parts[v] as usize;
        for &u in dag.neighbors_plus(v as u32) {
            let q = parts[u as usize] as usize;
            if q != r {
                buckets[q * p + r].push(u);
            }
        }
    }
    for b in &mut buckets {
        b.sort_unstable();
        b.dedup();
    }
    let mut out: Vec<Vec<Vec<u32>>> = Vec::with_capacity(p);
    let mut it = buckets.into_iter();
    for _ in 0..p {
        out.push((&mut it).take(p).collect());
    }
    out
}

/// The single-process replay of the distributed grouping: partial `r` is
/// the sequential sum over vertices owned by `r` in ascending id order of
/// that row's clamped estimates. Summing the returned vector in order is
/// **bit-equal** to [`ExchangeReport::distributed_tc`] for the same
/// inputs, because every per-row estimate depends only on the two
/// sketches and the recorded sizes — which the workers rebuild
/// bit-identically — and the accumulation order is identical.
pub fn single_process_partials(
    dag: &OrientedDag,
    pg: &ProbGraph,
    parts: &[u32],
    p: usize,
) -> Vec<f64> {
    struct V<'a> {
        dag: &'a OrientedDag,
        parts: &'a [u32],
        p: usize,
    }
    impl OracleVisitor for V<'_> {
        type Output = Vec<f64>;
        fn visit<O: IntersectionOracle>(self, o: &O) -> Vec<f64> {
            let mut partials = vec![0.0f64; self.p];
            let mut row = Vec::new();
            for v in 0..self.dag.num_vertices() {
                let np = self.dag.neighbors_plus(v as u32);
                o.estimate_row(v as u32, np, &mut row);
                partials[self.parts[v] as usize] += row.iter().fold(0.0f64, |s, &e| s + e.max(0.0));
            }
            partials
        }
    }
    // Ascending-id iteration visits each part's owned vertices in the same
    // ascending order the workers use, so per-part sums match bit for bit.
    pg.with_oracle(V { dag, parts, p })
}

mod sys {
    use std::os::raw::c_int;
    extern "C" {
        pub fn fork() -> c_int;
        pub fn waitpid(pid: c_int, status: *mut c_int, options: c_int) -> c_int;
        pub fn _exit(code: c_int) -> !;
    }
}

/// Decoded worker result blob ("PGXR" over the coordinator link).
struct WorkerResult {
    ok: bool,
    partial: f64,
    sketch_sent: Vec<u64>,
    exact_sent: Vec<u64>,
    sketch_recv: Vec<u64>,
    exact_recv: Vec<u64>,
    err: String,
}

const RESULT_MAGIC: [u8; 4] = *b"PGXR";

fn write_result(w: &mut impl Write, part: u32, p: usize, r: &WorkerResult) -> io::Result<()> {
    let mut out = Vec::with_capacity(24 + 32 * p + r.err.len());
    out.extend_from_slice(&RESULT_MAGIC);
    out.extend_from_slice(&part.to_le_bytes());
    out.extend_from_slice(&(r.ok as u32).to_le_bytes());
    out.extend_from_slice(&r.partial.to_bits().to_le_bytes());
    for arr in [&r.sketch_sent, &r.exact_sent, &r.sketch_recv, &r.exact_recv] {
        debug_assert_eq!(arr.len(), p);
        for &b in arr.iter() {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
    out.extend_from_slice(&(r.err.len() as u32).to_le_bytes());
    out.extend_from_slice(r.err.as_bytes());
    let sum = xxh64(&out, FRAME_CHECKSUM_SEED);
    out.extend_from_slice(&sum.to_le_bytes());
    w.write_all(&out)
}

fn read_result(
    r: &mut impl Read,
    expect_part: u32,
    p: usize,
) -> Result<WorkerResult, ExchangeError> {
    let mut fixed = vec![0u8; 20 + 32 * p + 4];
    r.read_exact(&mut fixed)
        .map_err(|e| ExchangeError::Frame(format!("truncated worker result: {e}")))?;
    if fixed[0..4] != RESULT_MAGIC {
        return Err(ExchangeError::Frame("bad worker result magic".into()));
    }
    let u32_at = |b: &[u8], o: usize| u32::from_le_bytes(b[o..o + 4].try_into().unwrap());
    let u64_at = |b: &[u8], o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
    let part = u32_at(&fixed, 4);
    if part != expect_part {
        return Err(ExchangeError::Protocol(format!(
            "result from part {part} arrived on part {expect_part}'s link"
        )));
    }
    let ok = u32_at(&fixed, 8) != 0;
    let partial = f64::from_bits(u64_at(&fixed, 12));
    let mut arrays: Vec<Vec<u64>> = Vec::with_capacity(4);
    let mut off = 20;
    for _ in 0..4 {
        let mut a = Vec::with_capacity(p);
        for _ in 0..p {
            a.push(u64_at(&fixed, off));
            off += 8;
        }
        arrays.push(a);
    }
    let err_len = u32_at(&fixed, off) as usize;
    if err_len > 1 << 20 {
        return Err(ExchangeError::Frame(format!(
            "worker error message of {err_len} bytes"
        )));
    }
    let mut tail = vec![0u8; err_len + 8];
    r.read_exact(&mut tail)
        .map_err(|e| ExchangeError::Frame(format!("truncated worker result: {e}")))?;
    let body_len = fixed.len() + err_len;
    let mut body = fixed;
    body.extend_from_slice(&tail[..err_len]);
    debug_assert_eq!(body.len(), body_len);
    let stored = u64::from_le_bytes(tail[err_len..].try_into().unwrap());
    if xxh64(&body, FRAME_CHECKSUM_SEED) != stored {
        return Err(ExchangeError::Frame(
            "worker result checksum mismatch".into(),
        ));
    }
    let err = String::from_utf8_lossy(&body[body.len() - err_len..]).into_owned();
    let mut it = arrays.into_iter();
    Ok(WorkerResult {
        ok,
        partial,
        sketch_sent: it.next().unwrap(),
        exact_sent: it.next().unwrap(),
        sketch_recv: it.next().unwrap(),
        exact_recv: it.next().unwrap(),
        err,
    })
}

/// Everything a worker needs; inherited through `fork`, so no
/// serialization of the graph itself is ever required.
struct Ctx<'a> {
    dag: &'a OrientedDag,
    p: usize,
    params: SketchParams,
    /// Full per-set geometry when the coordinator's graph is
    /// degree-stratified; workers slice the global assignment over
    /// whatever rows they rebuild, so every sub-store row stays
    /// bit-identical to the coordinator's.
    stratified: Option<&'a StratifiedParams>,
    est: BfEstimator,
    seed: u64,
    opts: &'a ExchangeOptions,
    /// `ship[q][r]` = S(q→r), precomputed once before forking.
    ship: &'a [Vec<Vec<u32>>],
    /// `owned[r]` = ascending list of vertices assigned to part `r`.
    owned: &'a [Vec<u32>],
}

impl Ctx<'_> {
    /// Rebuilds the sub-store for an arbitrary row subset `rows` under the
    /// coordinator's geometry: uniform rows go through
    /// [`ProbGraph::build_rows`]; stratified rows slice the global
    /// assignment while sharing the stratum table, so each row's sketch is
    /// bit-identical to the coordinator's row for the same vertex.
    fn build_rows_of(&self, rows: &[u32]) -> ProbGraph {
        match self.stratified {
            Some(sp) => ProbGraph::build_rows_stratified(
                rows.len(),
                StratifiedParams::new(
                    sp.strata().to_vec(),
                    rows.iter().map(|&u| sp.assign()[u as usize]).collect(),
                ),
                self.est,
                self.seed,
                |i| self.dag.neighbors_plus(rows[i]),
            ),
            None => ProbGraph::build_rows(rows.len(), self.params, self.est, self.seed, |i| {
                self.dag.neighbors_plus(rows[i])
            }),
        }
    }
}

/// Runs one distributed neighborhood-exchange round with `p` forked
/// worker processes and returns the measured report. `parts[v]` assigns
/// vertex `v` to a part in `0..p`; `pg` must be the sketch store built
/// over `dag`'s `N⁺` rows (its params/seed/estimator are what the workers
/// rebuild their sub-stores under).
pub fn run_exchange(
    dag: &OrientedDag,
    pg: &ProbGraph,
    parts: &[u32],
    p: usize,
    opts: &ExchangeOptions,
) -> Result<ExchangeReport, ExchangeError> {
    let n = dag.num_vertices();
    if p == 0 {
        return Err(ExchangeError::Protocol("p must be at least 1".into()));
    }
    if parts.len() != n || pg.len() != n {
        return Err(ExchangeError::Protocol(format!(
            "inconsistent sizes: dag {n}, parts {}, pg {}",
            parts.len(),
            pg.len()
        )));
    }
    if let Some(&bad) = parts.iter().find(|&&x| x as usize >= p) {
        return Err(ExchangeError::Protocol(format!(
            "part id {bad} out of range 0..{p}"
        )));
    }

    let ship = ship_sets(dag, parts, p);
    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); p];
    for v in 0..n {
        owned[parts[v] as usize].push(v as u32);
    }
    let ctx = Ctx {
        dag,
        p,
        params: pg.params(),
        stratified: pg.stratified_params(),
        est: pg.bf_estimator(),
        seed: pg.seed(),
        opts,
        ship: &ship,
        owned: &owned,
    };

    // Socket mesh: one pair per unordered part pair, plus a coordinator
    // link per worker. All ends get timeouts before any fork.
    let mut mesh: Vec<Option<(UnixStream, UnixStream)>> = Vec::new();
    mesh.resize_with(p * p, || None);
    for q in 0..p {
        for r in (q + 1)..p {
            let (a, b) = UnixStream::pair()?;
            for s in [&a, &b] {
                s.set_read_timeout(Some(opts.timeout))?;
                s.set_write_timeout(Some(opts.timeout))?;
            }
            mesh[q * p + r] = Some((a, b));
        }
    }
    let mut coord: Vec<Option<(UnixStream, UnixStream)>> = Vec::new();
    for _ in 0..p {
        let (a, b) = UnixStream::pair()?;
        a.set_read_timeout(Some(opts.timeout))?;
        coord.push(Some((a, b)));
    }

    let mut pids: Vec<i32> = Vec::with_capacity(p);
    for r in 0..p {
        // SAFETY: plain fork; the child only touches memory it inherited
        // and exits via `_exit`, never unwinding into the parent's stack.
        let pid = unsafe { sys::fork() };
        if pid < 0 {
            // Reap whatever was already forked before bailing out.
            for &pid in &pids {
                unsafe {
                    let mut status = 0;
                    sys::waitpid(pid, &mut status, 0);
                }
            }
            return Err(ExchangeError::Io(io::Error::last_os_error()));
        }
        if pid == 0 {
            // Child: extract this part's socket ends, close everything
            // else (EOF detection for peers relies on it), run, exit.
            let mut peers: Vec<Option<UnixStream>> = Vec::new();
            peers.resize_with(p, || None);
            for (idx, slot) in mesh.iter_mut().enumerate() {
                let (q0, r0) = (idx / p, idx % p);
                if let Some((a, b)) = slot.take() {
                    if q0 == r {
                        peers[r0] = Some(a);
                    } else if r0 == r {
                        peers[q0] = Some(b);
                    }
                    // Non-matching ends drop here, closing the fds.
                }
            }
            let mut link = None;
            for (idx, slot) in coord.iter_mut().enumerate() {
                if let Some((a, b)) = slot.take() {
                    drop(a);
                    if idx == r {
                        link = Some(b);
                    }
                }
            }
            let code = worker_entry(r as u32, &ctx, peers, link.expect("own coordinator link"));
            unsafe { sys::_exit(code) }
        }
        pids.push(pid);
    }

    // Parent: close the whole mesh and the child ends of the links.
    drop(mesh);
    let mut links: Vec<UnixStream> = Vec::with_capacity(p);
    for slot in &mut coord {
        let (a, b) = slot.take().expect("link not yet consumed");
        drop(b);
        links.push(a);
    }

    let mut results: Vec<Option<Result<WorkerResult, ExchangeError>>> = Vec::new();
    for (r, link) in links.iter_mut().enumerate() {
        results.push(Some(read_result(link, r as u32, p)));
    }
    drop(links);

    // Always reap every child — no zombies, no leaked processes, whatever
    // the outcome.
    let mut codes: Vec<i32> = Vec::with_capacity(p);
    for &pid in &pids {
        let mut status: i32 = 0;
        // SAFETY: waitpid on a child we forked; blocking is bounded by the
        // workers' own socket timeouts.
        let got = unsafe { sys::waitpid(pid, &mut status, 0) };
        codes.push(if got < 0 {
            EXIT_REPORT_FAILED
        } else if status & 0x7f == 0 {
            (status >> 8) & 0xff
        } else {
            -(status & 0x7f)
        });
    }

    // A worker that died without reporting is the root cause; surface it
    // ahead of the secondary errors its peers saw.
    for (r, (res, &code)) in results.iter().zip(codes.iter()).enumerate() {
        if matches!(res, Some(Err(_))) && code != 0 {
            return Err(ExchangeError::WorkerExit {
                part: r as u32,
                code,
            });
        }
    }
    for (r, slot) in results.iter_mut().enumerate() {
        match slot.take().expect("result slot filled above") {
            Ok(res) if res.ok => *slot = Some(Ok(res)),
            Ok(res) => {
                return Err(ExchangeError::Worker {
                    part: r as u32,
                    detail: res.err,
                });
            }
            Err(e) => {
                return Err(ExchangeError::Worker {
                    part: r as u32,
                    detail: format!("no result: {e}"),
                })
            }
        }
    }
    let results: Vec<WorkerResult> = results
        .into_iter()
        .map(|r| match r {
            Some(Ok(res)) => res,
            _ => unreachable!("all results checked ok above"),
        })
        .collect();

    // Assemble matrices from sender-side counts and cross-check them
    // against what the receivers measured.
    let mut sketch_pair = vec![vec![0u64; p]; p];
    let mut exact_pair = vec![vec![0u64; p]; p];
    for (q, res) in results.iter().enumerate() {
        for r in 0..p {
            sketch_pair[q][r] = res.sketch_sent[r];
            exact_pair[q][r] = res.exact_sent[r];
        }
    }
    for (r, res) in results.iter().enumerate() {
        for q in 0..p {
            if res.sketch_recv[q] != sketch_pair[q][r] || res.exact_recv[q] != exact_pair[q][r] {
                return Err(ExchangeError::Protocol(format!(
                    "byte counts disagree for pair {q}->{r}: sent ({}, {}), received ({}, {})",
                    sketch_pair[q][r], exact_pair[q][r], res.sketch_recv[q], res.exact_recv[q]
                )));
            }
        }
    }

    let partials: Vec<f64> = results.iter().map(|r| r.partial).collect();
    let distributed_tc = partials.iter().sum();
    Ok(ExchangeReport {
        parts: p,
        partials,
        distributed_tc,
        sketch_pair_bytes: sketch_pair,
        exact_pair_bytes: exact_pair,
    })
}

/// Child-process entry: runs the worker under `catch_unwind` so a bug can
/// never unwind back into the forked copy of the coordinator's stack, and
/// reports the outcome (or the typed error) over the coordinator link.
fn worker_entry(
    r: u32,
    ctx: &Ctx<'_>,
    peers: Vec<Option<UnixStream>>,
    mut link: UnixStream,
) -> i32 {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = catch_unwind(AssertUnwindSafe(|| worker_run(r, ctx, peers)));
    std::panic::set_hook(prev_hook);
    let result = match outcome {
        Ok(Ok(res)) => res,
        Ok(Err(e)) => WorkerResult {
            ok: false,
            partial: 0.0,
            sketch_sent: vec![0; ctx.p],
            exact_sent: vec![0; ctx.p],
            sketch_recv: vec![0; ctx.p],
            exact_recv: vec![0; ctx.p],
            err: e.to_string(),
        },
        Err(_) => return EXIT_PANIC,
    };
    match write_result(&mut link, r, ctx.p, &result) {
        Ok(()) => 0,
        Err(_) => EXIT_REPORT_FAILED,
    }
}

/// The worker body for part `r`: rebuild the owned sub-store, pre-encode
/// outgoing chunks, run the pairwise exchange, validate what arrived,
/// gather the combined store, and compute this part's partial count.
fn worker_run(
    r: u32,
    ctx: &Ctx<'_>,
    mut peers: Vec<Option<UnixStream>>,
) -> Result<WorkerResult, ExchangeError> {
    let rr = r as usize;
    let p = ctx.p;
    let chunk = ctx.opts.chunk_sets.max(1);
    let my = &ctx.owned[rr];

    if let Some(Fault::KillWorker { part }) = ctx.opts.fault {
        if part == r {
            // Die before touching the mesh; peers see EOF, the
            // coordinator sees an exit code and no result.
            unsafe { sys::_exit(EXIT_KILLED) }
        }
    }

    let own_pg = ctx.build_rows_of(my);

    // Pre-encode every outgoing payload so the exchange loop is pure I/O.
    let mut out_sketch: Vec<Vec<Vec<u8>>> = vec![Vec::new(); p];
    let mut out_exact: Vec<Vec<Vec<u8>>> = vec![Vec::new(); p];
    for q in 0..p {
        if q == rr {
            continue;
        }
        for rows in ctx.ship[rr][q].chunks(chunk) {
            let sub = ctx.build_rows_of(rows);
            out_sketch[q].push(sub.snapshot_to_bytes());
            out_exact[q].push(encode_exact_rows(ctx.dag, rows));
        }
    }

    if let Some(Fault::CorruptPayload { part }) = ctx.opts.fault {
        if part == r {
            let payload = out_sketch
                .iter_mut()
                .flat_map(|chunks| chunks.iter_mut())
                .find(|pl| !pl.is_empty());
            if let Some(pl) = payload {
                let mid = pl.len() / 2;
                pl[mid] ^= 0x40;
            }
        }
    }
    let truncate = matches!(ctx.opts.fault, Some(Fault::TruncateStream { part }) if part == r);

    let mut sketch_sent = vec![0u64; p];
    let mut exact_sent = vec![0u64; p];
    let mut sketch_recv = vec![0u64; p];
    let mut exact_recv = vec![0u64; p];
    let mut recv_bufs: Vec<Vec<AlignedBytes>> = Vec::new();
    recv_bufs.resize_with(p, Vec::new);

    // Ascending peer order, lower part sends first within a pair: every
    // worker visits pairs in global (min, max) lexicographic order, so the
    // smallest uncompleted pair always has both endpoints ready.
    for q in 0..p {
        if q == rr {
            continue;
        }
        let stream = peers[q].as_mut().expect("mesh stream for peer");
        if rr < q {
            send_to_peer(
                stream,
                r,
                q as u32,
                &out_sketch[q],
                &out_exact[q],
                &mut sketch_sent[q],
                &mut exact_sent[q],
                truncate,
            )?;
            recv_from_peer(
                stream,
                ctx,
                q as u32,
                r,
                &mut sketch_recv[q],
                &mut exact_recv[q],
                &mut recv_bufs[q],
            )?;
        } else {
            recv_from_peer(
                stream,
                ctx,
                q as u32,
                r,
                &mut sketch_recv[q],
                &mut exact_recv[q],
                &mut recv_bufs[q],
            )?;
            send_to_peer(
                stream,
                r,
                q as u32,
                &out_sketch[q],
                &out_exact[q],
                &mut sketch_sent[q],
                &mut exact_sent[q],
                truncate,
            )?;
        }
    }
    drop(peers);

    // Zero-copy validation of every received sketch chunk against the
    // rows this part expects from that sender.
    let mut remote_graphs: Vec<ProbGraphIn<'_>> = Vec::new();
    let mut remote_sizes: Vec<u32> = Vec::new();
    for (q, bufs) in recv_bufs.iter().enumerate() {
        if q == rr {
            continue;
        }
        let expect = &ctx.ship[q][rr];
        let mut row_off = 0usize;
        for buf in bufs {
            let sub = ProbGraphIn::from_snapshot_bytes_borrowed(buf).map_err(|e| {
                ExchangeError::Payload {
                    from: q as u32,
                    detail: format!("snapshot rejected: {e}"),
                }
            })?;
            let rows = &expect[row_off..(row_off + sub.len()).min(expect.len())];
            validate_remote_chunk(ctx, q as u32, &sub, rows)?;
            row_off += sub.len();
            remote_sizes.extend_from_slice(sub.sizes());
            remote_graphs.push(sub);
        }
        if row_off != expect.len() {
            return Err(ExchangeError::Payload {
                from: q as u32,
                detail: format!("received {row_off} rows, expected {}", expect.len()),
            });
        }
    }

    // Combined local store: owned rows first, then each sender's ship set
    // in ascending part order — the same order the local id map assigns.
    let mut store = build_store(ctx.params, 0, ctx.seed, |_| &[][..]);
    let mut store_parts = vec![own_pg.store()];
    store_parts.extend(remote_graphs.iter().map(|g| g.store()));
    gather_store_into(&mut store, &store_parts);
    let mut sizes = own_pg.sizes().to_vec();
    sizes.extend_from_slice(&remote_sizes);
    // Re-slice the global assignment in the same owned-then-shipped order
    // so the combined graph's geometry matches the gathered store.
    let combined_strat = ctx.stratified.map(|sp| {
        let mut assign: Vec<u8> = my.iter().map(|&v| sp.assign()[v as usize]).collect();
        for q in 0..p {
            if q != rr {
                assign.extend(ctx.ship[q][rr].iter().map(|&u| sp.assign()[u as usize]));
            }
        }
        StratifiedParams::new(sp.strata().to_vec(), assign)
    });
    let combined =
        ProbGraphIn::from_parts(store, sizes, ctx.est, ctx.params, combined_strat, ctx.seed);

    let mut local_id = vec![u32::MAX; ctx.dag.num_vertices()];
    for (i, &v) in my.iter().enumerate() {
        local_id[v as usize] = i as u32;
    }
    let mut off = my.len() as u32;
    for q in 0..p {
        if q == rr {
            continue;
        }
        for &u in &ctx.ship[q][rr] {
            local_id[u as usize] = off;
            off += 1;
        }
    }

    struct PartialVisitor<'a> {
        dag: &'a OrientedDag,
        my: &'a [u32],
        local_id: &'a [u32],
    }
    impl OracleVisitor for PartialVisitor<'_> {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            let mut acc = 0.0f64;
            let mut row = Vec::new();
            let mut targets: Vec<u32> = Vec::new();
            for (i, &v) in self.my.iter().enumerate() {
                targets.clear();
                targets.extend(
                    self.dag
                        .neighbors_plus(v)
                        .iter()
                        .map(|&u| self.local_id[u as usize]),
                );
                o.estimate_row(i as u32, &targets, &mut row);
                acc += row.iter().fold(0.0f64, |s, &e| s + e.max(0.0));
            }
            acc
        }
    }
    let partial = combined.with_oracle(PartialVisitor {
        dag: ctx.dag,
        my,
        local_id: &local_id,
    });

    Ok(WorkerResult {
        ok: true,
        partial,
        sketch_sent,
        exact_sent,
        sketch_recv,
        exact_recv,
        err: String::new(),
    })
}

/// Cross-checks a decoded remote chunk against what the receiver expects:
/// same params, seed, and estimator as its own build, the right number of
/// rows, and per-row sizes equal to the shipped vertices' out-degrees.
fn validate_remote_chunk(
    ctx: &Ctx<'_>,
    from: u32,
    sub: &ProbGraphIn<'_>,
    rows: &[u32],
) -> Result<(), ExchangeError> {
    let fail = |detail: String| Err(ExchangeError::Payload { from, detail });
    if sub.params() != ctx.params {
        return fail(format!(
            "params {:?} do not match {:?}",
            sub.params(),
            ctx.params
        ));
    }
    if sub.seed() != ctx.seed {
        return fail(format!("seed {} does not match {}", sub.seed(), ctx.seed));
    }
    if sub.bf_estimator() != ctx.est {
        return fail("estimator variant mismatch".into());
    }
    if sub.len() != rows.len() {
        return fail(format!(
            "chunk has {} rows, expected {}",
            sub.len(),
            rows.len()
        ));
    }
    match (sub.stratified_params(), ctx.stratified) {
        (None, None) => {}
        (Some(got), Some(sp)) => {
            if got.strata() != sp.strata() {
                return fail(format!(
                    "stratum table {:?} does not match {:?}",
                    got.strata(),
                    sp.strata()
                ));
            }
            for (i, &u) in rows.iter().enumerate() {
                if got.assign()[i] != sp.assign()[u as usize] {
                    return fail(format!(
                        "row {u} assigned stratum {}, expected {}",
                        got.assign()[i],
                        sp.assign()[u as usize]
                    ));
                }
            }
        }
        (got, _) => {
            return fail(format!(
                "chunk stratification ({}) does not match the coordinator's ({})",
                if got.is_some() {
                    "stratified"
                } else {
                    "uniform"
                },
                if ctx.stratified.is_some() {
                    "stratified"
                } else {
                    "uniform"
                },
            ));
        }
    }
    for (i, &u) in rows.iter().enumerate() {
        if sub.set_size(i) != ctx.dag.out_degree(u) {
            return fail(format!(
                "row {u} has recorded size {}, expected out-degree {}",
                sub.set_size(i),
                ctx.dag.out_degree(u)
            ));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn send_to_peer(
    stream: &mut UnixStream,
    from: u32,
    to: u32,
    sketch_chunks: &[Vec<u8>],
    exact_chunks: &[Vec<u8>],
    sketch_sent: &mut u64,
    exact_sent: &mut u64,
    truncate: bool,
) -> Result<(), ExchangeError> {
    for (kind, chunks, counter) in [
        (PayloadKind::Sketch, sketch_chunks, &mut *sketch_sent),
        (PayloadKind::ExactRows, exact_chunks, &mut *exact_sent),
    ] {
        if chunks.is_empty() {
            let h = FrameHeader {
                from,
                to,
                kind: kind as u32,
                chunk: 0,
                n_chunks: 0,
                payload_len: 0,
            };
            write_frame(stream, &h, &[])?;
            *counter += FRAME_HEADER_LEN as u64;
            continue;
        }
        for (c, payload) in chunks.iter().enumerate() {
            let h = FrameHeader {
                from,
                to,
                kind: kind as u32,
                chunk: c as u32,
                n_chunks: chunks.len() as u32,
                payload_len: payload.len() as u64,
            };
            if truncate && kind == PayloadKind::Sketch {
                // Fault injection: header promises the full payload, the
                // stream delivers half of it, then the worker dies.
                let half = payload.len() / 2;
                stream.write_all(&encode_frame_header(&h))?;
                stream.write_all(&payload[..half])?;
                let _ = stream.flush();
                unsafe { sys::_exit(EXIT_TRUNCATED) }
            }
            write_frame(stream, &h, payload)?;
            *counter += (FRAME_HEADER_LEN + payload.len()) as u64;
        }
    }
    Ok(())
}

fn recv_from_peer(
    stream: &mut UnixStream,
    ctx: &Ctx<'_>,
    from: u32,
    to: u32,
    sketch_recv: &mut u64,
    exact_recv: &mut u64,
    sketch_bufs: &mut Vec<AlignedBytes>,
) -> Result<(), ExchangeError> {
    let expect_rows = &ctx.ship[from as usize][to as usize];
    let chunk = ctx.opts.chunk_sets.max(1);
    let expect_chunks = expect_rows.len().div_ceil(chunk);
    for kind in [PayloadKind::Sketch, PayloadKind::ExactRows] {
        let mut row_off = 0usize;
        let mut c = 0u32;
        loop {
            let (h, payload) = read_frame(stream)?;
            if h.from != from || h.to != to {
                return Err(ExchangeError::Protocol(format!(
                    "frame addressed {}->{} arrived on pair {from}->{to}",
                    h.from, h.to
                )));
            }
            if h.kind != kind as u32 {
                return Err(ExchangeError::Protocol(format!(
                    "expected kind {} frame, got kind {}",
                    kind as u32, h.kind
                )));
            }
            if h.n_chunks as usize != expect_chunks {
                return Err(ExchangeError::Protocol(format!(
                    "peer {from} announced {} chunks, receiver expects {expect_chunks}",
                    h.n_chunks
                )));
            }
            if h.n_chunks == 0 {
                *count_for(kind, sketch_recv, exact_recv) += FRAME_HEADER_LEN as u64;
                break;
            }
            if h.chunk != c {
                return Err(ExchangeError::Protocol(format!(
                    "chunk {} arrived out of order (expected {c})",
                    h.chunk
                )));
            }
            *count_for(kind, sketch_recv, exact_recv) += (FRAME_HEADER_LEN as u64) + h.payload_len;
            let rows_here = chunk.min(expect_rows.len() - row_off);
            match kind {
                PayloadKind::Sketch => sketch_bufs.push(payload),
                PayloadKind::ExactRows => {
                    check_exact_rows(
                        &payload,
                        ctx.dag,
                        &expect_rows[row_off..row_off + rows_here],
                    )
                    .map_err(|e| ExchangeError::Payload {
                        from,
                        detail: e.to_string(),
                    })?;
                }
            }
            row_off += rows_here;
            c += 1;
            if c == h.n_chunks {
                break;
            }
        }
    }
    Ok(())
}

fn count_for<'a>(kind: PayloadKind, sketch: &'a mut u64, exact: &'a mut u64) -> &'a mut u64 {
    match kind {
        PayloadKind::Sketch => sketch,
        PayloadKind::ExactRows => exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_header_roundtrip() {
        let h = FrameHeader {
            from: 3,
            to: 7,
            kind: 1,
            chunk: 2,
            n_chunks: 9,
            payload_len: 1234,
        };
        let bytes = encode_frame_header(&h);
        assert_eq!(parse_frame_header(&bytes).unwrap(), h);
    }

    #[test]
    fn frame_header_rejects_every_single_bit_flip() {
        let h = FrameHeader {
            from: 0,
            to: 1,
            kind: 0,
            chunk: 0,
            n_chunks: 1,
            payload_len: 64,
        };
        let good = encode_frame_header(&h);
        for byte in 0..FRAME_HEADER_LEN {
            for bit in 0..8 {
                let mut bad = good;
                bad[byte] ^= 1 << bit;
                assert!(
                    parse_frame_header(&bad).is_err(),
                    "flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn frame_header_caps_payload_len() {
        let h = FrameHeader {
            from: 0,
            to: 1,
            kind: 0,
            chunk: 0,
            n_chunks: 1,
            payload_len: MAX_FRAME_PAYLOAD + 1,
        };
        // Re-encode so the checksum is valid and only the cap can reject.
        let bytes = encode_frame_header(&h);
        assert!(matches!(
            parse_frame_header(&bytes),
            Err(ExchangeError::Frame(_))
        ));
    }

    #[test]
    fn ship_sets_dedupe_per_vertex_and_part() {
        // Star: vertex 0 points at 1..=4; 0 owned by part 0, the rest by
        // part 1. Orientation is explicit via from_adjacency on the DAG's
        // underlying graph — use a tiny handmade DAG instead.
        let g =
            pg_graph::CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)]);
        let dag = pg_graph::orient_by_degree(&g);
        let parts = vec![0u32, 1, 1, 1, 1];
        let s = ship_sets(&dag, &parts, 2);
        // Whatever the orientation, a vertex owned by q that appears in
        // several of r's rows must be listed exactly once.
        for (q, row) in s.iter().enumerate() {
            for (r, set) in row.iter().enumerate() {
                let mut dd = set.clone();
                dd.dedup();
                assert_eq!(&dd, set, "ship set not deduplicated");
                assert!(set.windows(2).all(|w| w[0] < w[1]), "ship set not sorted");
                if q == r {
                    assert!(set.is_empty());
                }
                for &u in set {
                    assert_eq!(parts[u as usize] as usize, q);
                }
            }
        }
    }
}
