//! # ProbGraph — approximate graph mining with probabilistic set representations
//!
//! A Rust reproduction of *"ProbGraph: High-Performance and High-Accuracy
//! Graph Mining with Probabilistic Set Representations"* (Besta et al.,
//! SC 2022). The key idea: vertex neighborhoods are sets, the hot operation
//! of many graph-mining algorithms is the set-intersection cardinality
//! `|N_u ∩ N_v|`, and replacing exact sorted-array intersections with
//! sketch-based estimators (Bloom filters, MinHash, KMV) buys large
//! speedups at a small, *theoretically bounded* accuracy cost.
//!
//! ## Quickstart (Listing 6 of the paper)
//!
//! ```
//! use pg_graph::gen;
//! use probgraph::{ProbGraph, PgConfig, Representation};
//!
//! let g = gen::kronecker(10, 16, 42);
//!
//! // Exact: CSR merge/galloping intersection.
//! let exact = probgraph::intersect::intersect_card(g.neighbors(3), g.neighbors(5));
//!
//! // ProbGraph: Bloom filters under a 25 % storage budget.
//! let pg = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 2 }, 0.25));
//! let approx = pg.estimate_intersection(3, 5);
//!
//! // Both answer "how many common neighbors do 3 and 5 have?".
//! assert!((approx - exact as f64).abs() <= g.degree(3).max(g.degree(5)) as f64);
//! ```
//!
//! ## Modules
//!
//! * [`pg`] — the [`ProbGraph`] representation: per-neighborhood sketches
//!   under a storage budget `s` (§V).
//! * [`oracle`] — the monomorphized intersection-oracle layer: one
//!   [`IntersectionOracle`] trait implemented by exact CSR adjacency and
//!   every sketch (Bloom×{AND, Limit, OR}, k-hash, 1-hash, KMV, HLL);
//!   [`ProbGraph::with_oracle`] hoists the representation dispatch out of
//!   every per-edge loop.
//! * [`intersect`] — exact merge & galloping kernels (Fig. 1 panel 2).
//! * [`algorithms`] — Triangle Counting (Listing 1), 4-Clique Counting
//!   (Listing 2), Vertex Similarity (Listing 3), Jarvis–Patrick Clustering
//!   (Listing 4), Link Prediction (Listing 5) — each in exact and
//!   PG-accelerated form.
//! * [`baselines`] — the comparison schemes of §VIII: Doulion, Colorful
//!   TC, Reduced Execution, Partial Graph Processing, AutoApprox.
//! * [`tc_estimator`] — the §VII triangle-count estimators `T̂C_⋆` and
//!   their Theorem VII.1 bounds, instantiated with graph quantities.
//! * [`accuracy`] — relative-count / relative-error metrics of §VIII-A.
//! * [`workdepth`] — operation-count instrumentation validating the
//!   work/depth claims of Tables IV–VI.
//! * [`snapshot`] — durable checksummed on-disk snapshots of a
//!   [`ProbGraph`]: atomic saves, fault-attributing validated loads, and
//!   warm restarts that continue bit-identically — plus zero-copy loads
//!   (borrowed buffers and mmap) serving the same bits in place.
//! * [`exchange`] (Unix) — real multi-process neighborhood exchange over
//!   Unix sockets for distributed triangle counting (§VIII-F): snapshot
//!   wire format, per-(vertex, part) deduped ship sets, typed faults,
//!   bit-equal distributed counts.

pub mod accuracy;
pub mod algorithms;
pub mod baselines;
#[cfg(unix)]
pub mod exchange;
pub mod grain;
pub mod intersect;
pub mod oracle;
pub mod pg;
pub mod serving;
pub mod snapshot;
pub mod tc_estimator;
pub mod workdepth;

pub use accuracy::{relative_count, relative_error};
#[cfg(unix)]
pub use exchange::{
    run_exchange, single_process_partials, ExchangeError, ExchangeOptions, ExchangeReport, Fault,
};
pub use grain::{plan_for, plan_tiles, tiled_block_sweep, BlockKind, TilePlan};
pub use oracle::{
    ExactOracle, IntersectionOracle, MutableOracle, OracleVisitor, UnsupportedOperation,
};
pub use pg::{
    BfEstimator, Edge, PgConfig, ProbGraph, ProbGraphIn, Representation, SketchStore, SketchStoreIn,
};
pub use serving::{ServingReader, ShardedProbGraph};
#[cfg(unix)]
pub use snapshot::{load_snapshot_mmap, SnapshotMapping};
pub use snapshot::{AlignedBytes, SnapshotError, SnapshotReport};
