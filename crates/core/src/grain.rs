//! Degree-aware scheduling grains for the DAG kernels.
//!
//! Triangle and 4-clique counting iterate vertices, but the work behind a
//! vertex scales with powers of its oriented out-degree — on power-law
//! graphs the hubs would serialize a count-based schedule (one chunk drags
//! the join while every other worker idles). These helpers summarize the
//! degree profile with one cheap parallel pass and feed it to
//! [`pg_parallel::weighted_grain`], which shrinks the chunk size until the
//! dynamic scheduler can isolate hubs.

use crate::oracle::IntersectionOracle;
use pg_graph::{OrientedDag, VertexId};
use pg_parallel::{map_reduce, weighted_grain};

/// `(Σ w(v), max w(v))` over all vertices, where `w(v) = d⁺(v)^pow`
/// (saturating — degree profiles of billion-edge graphs stay finite).
fn degree_power_stats(dag: &OrientedDag, pow: u32) -> (u64, u64) {
    map_reduce(
        dag.num_vertices(),
        || (0u64, 0u64),
        |(sum, max), v| {
            let d = dag.out_degree(v as VertexId) as u64;
            let w = d.saturating_pow(pow);
            (sum.saturating_add(w), max.max(w))
        },
        |(s1, m1), (s2, m2)| (s1.saturating_add(s2), m1.max(m2)),
    )
}

/// Scheduling grain for kernels whose per-vertex work is `d⁺(v)^pow`:
/// `pow = 1` for per-edge sketch estimators (one `O(B/W)`/`O(k)` call per
/// edge), `pow = 2` for wedge kernels (exact triangle counting: a sum of
/// `O(d⁺)` merges per vertex), `pow = 3` for 4-clique kernels (each
/// oriented edge materializes a `C3` set and intersects every member
/// against it). The generic oracle kernels pick `pow` from
/// [`crate::oracle::IntersectionOracle::degree_scaled_cost`].
pub(crate) fn degree_power_grain(dag: &OrientedDag, pow: u32) -> usize {
    let (total, max) = degree_power_stats(dag, pow);
    weighted_grain(dag.num_vertices(), total, max)
}

// ---------------------------------------------------------------------------
// Cache tiling: the blocked row-sweep traversal
// ---------------------------------------------------------------------------

/// Geometry of one blocked sweep: destinations are partitioned into
/// contiguous id ranges of `tile_ids` sets (one cache-resident window of
/// the flat sketch array), and sources are processed `batch` at a time so
/// each tile's lines are re-read across the whole batch instead of being
/// refetched per edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    /// Destination sets per tile (`⌈tile_bytes / window_bytes⌉`-ish).
    pub tile_ids: usize,
    /// Pinned source rows swept across each tile before it is evicted.
    pub batch: usize,
}

/// Plans a blocked sweep over `n_ids` destination sets of `window_bytes`
/// each, or `None` when the plain row sweep wins:
///
/// * `window_bytes == 0` / `n_ids == 0` — nothing to tile;
/// * one window alone overflows the tile budget (huge filters — the same
///   regime where `BloomCollection` skips its Swamidass table and
///   [`pg_sketch::bitvec::prefetch_distance`] returns 0);
/// * the whole collection fits in twice the tile budget (tiny graphs: every
///   destination is cache-resident after the first row, so blocking only
///   adds bookkeeping).
///
/// The tile budget comes from [`pg_parallel::tile_bytes`] (`PG_TILE_BYTES`
/// override, else half the probed L2 — L1-sized tiles shrink the per-source
/// segments below what the 4-lane kernels can amortize). The source batch
/// matches the tile (`batch = tile_ids`): one blocked sweep refetches the
/// store `nt` times for source windows and `nb` times for tile fills, and
/// with `nt·nb` fixed by the two byte budgets the sum `nt + nb` is minimal
/// when the budgets are equal — which also keeps the streamed batch windows
/// from evicting the resident tile mid-unit.
pub fn plan_tiles(n_ids: usize, window_bytes: usize) -> Option<TilePlan> {
    if n_ids == 0 || window_bytes == 0 {
        return None;
    }
    let budget = pg_parallel::tile_bytes();
    if window_bytes > budget {
        return None;
    }
    let total = n_ids.checked_mul(window_bytes)?;
    if total <= budget.saturating_mul(2) {
        return None;
    }
    let tile_ids = (budget / window_bytes).max(1).min(n_ids);
    let batch = tile_ids.clamp(64, 8192);
    Some(TilePlan { tile_ids, batch })
}

/// Plans a blocked sweep for `oracle` (via
/// [`IntersectionOracle::dest_window_bytes`]) over `n_ids` destination
/// sets; `None` routes the caller to its plain row-sweep path.
pub fn plan_for<O: IntersectionOracle + ?Sized>(oracle: &O, n_ids: usize) -> Option<TilePlan> {
    plan_tiles(n_ids, oracle.dest_window_bytes()?)
}

/// Which blocked kernel a [`tiled_block_sweep`] runs per segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// [`IntersectionOracle::estimate_block_into`] — intersection sizes.
    Estimate,
    /// [`IntersectionOracle::jaccard_block_into`] — native Jaccard rows.
    Jaccard,
}

/// Worker-local scratch of one blocked sweep: the flattened segment layout
/// of the current (source-batch × destination-tile) block plus the value
/// buffer under the row-buffer reuse contract. All vectors grow to the
/// widest block once and are then reused allocation-free.
///
/// `bounds` caches, per source of the *current batch*, the `nt + 1` row
/// indices where its sorted row crosses each tile boundary — computed in
/// one predictable linear walk per row when a worker first touches a batch
/// and reused across all of that batch's tile units (the grain keeps a
/// batch's tiles on one worker). Without it every (source, tile) unit
/// would pay two branch-mispredicting binary searches for a segment only a
/// few destinations long, which costs more than the segment's kernel.
#[derive(Default)]
struct BlockScratch {
    sources: Vec<VertexId>,
    seg_row_start: Vec<usize>,
    offs: Vec<usize>,
    us: Vec<VertexId>,
    out: Vec<f64>,
    bounds: Vec<u32>,
    cached_batch: Option<usize>,
}

/// The shared blocked row-sweep traversal: every algorithm that used to
/// sweep `rows(v)` per source vertex reroutes through this when
/// [`plan_for`] says tiling is profitable.
///
/// Traversal order is batch-major: for each batch of `plan.batch` sources,
/// every destination tile is visited in ascending id order, and within one
/// (batch × tile) block each source's in-tile destinations (a contiguous
/// segment of its sorted row, found by binary search) are estimated with
/// one [`IntersectionOracle::estimate_block_into`] /
/// [`IntersectionOracle::jaccard_block_into`] call. `fold(acc, v,
/// seg_row_start, dests, vals)` then folds each segment — `seg_row_start`
/// is the segment's offset inside `rows(v)`, so sinks that write per-edge
/// outputs can address `flat_offset(v) + seg_row_start + t` directly.
///
/// Scheduling: the work-stealing unit is the destination **tile** — the
/// claimed index space is `batches × tiles` (batch-major, so one grain of
/// consecutive units is one batch's tile sweep, default a whole batch)
/// which keeps a tile's destination lines hot on the core that claimed it;
/// with fewer batches than workers the grain shrinks to split one batch's
/// tiles across cores. Per-destination values are bit-identical to the
/// untiled row sweep for any plan (pinned by the tiled-equivalence suite);
/// only the `fold`/`combine` order varies, exactly like every other
/// [`pg_parallel::map_reduce`] reduction.
#[allow(clippy::too_many_arguments)]
pub fn tiled_block_sweep<'g, O, T, FRow, FId, FFold, FComb>(
    n_sources: usize,
    n_ids: usize,
    oracle: &O,
    plan: &TilePlan,
    kind: BlockKind,
    rows: FRow,
    identity: FId,
    fold: FFold,
    combine: FComb,
) -> T
where
    O: IntersectionOracle + ?Sized,
    T: Send,
    FRow: Fn(VertexId) -> &'g [VertexId] + Sync,
    FId: Fn() -> T + Sync,
    FFold: Fn(T, VertexId, usize, &[VertexId], &[f64]) -> T + Sync,
    FComb: Fn(T, T) -> T + Sync,
{
    let tile_ids = plan.tile_ids.max(1);
    let batch = plan.batch.max(1);
    let nt = n_ids.div_ceil(tile_ids).max(1);
    let nb = n_sources.div_ceil(batch);
    let units = nb * nt;
    let threads = pg_parallel::current_threads().max(1);
    // Grain in tiles: a whole batch-sweep when there are batches to spare,
    // else split one batch's tiles across the workers.
    let grain = if nb >= 2 * threads {
        nt
    } else {
        (units / (8 * threads)).clamp(1, nt)
    };
    pg_parallel::map_reduce_scratch(
        units,
        grain,
        &identity,
        BlockScratch::default,
        |scratch, mut acc, unit| {
            let b = unit / nt;
            let tile = unit % nt;
            let s0 = b * batch;
            let s1 = (s0 + batch).min(n_sources);
            if scratch.cached_batch != Some(b) {
                // First unit of this batch on this worker: one linear walk
                // per row records where it crosses every tile boundary
                // (rows are sorted ascending, so the walk never backs up).
                scratch.bounds.clear();
                scratch.bounds.reserve((s1 - s0) * (nt + 1));
                for v in s0..s1 {
                    let row = rows(v as VertexId);
                    let mut idx = 0usize;
                    scratch.bounds.push(0);
                    for t in 1..=nt {
                        let d1 = t * tile_ids;
                        while idx < row.len() && (row[idx] as usize) < d1 {
                            idx += 1;
                        }
                        scratch.bounds.push(idx as u32);
                    }
                }
                scratch.cached_batch = Some(b);
            }
            scratch.sources.clear();
            scratch.seg_row_start.clear();
            scratch.offs.clear();
            scratch.us.clear();
            scratch.offs.push(0);
            for v in s0..s1 {
                let base = (v - s0) * (nt + 1);
                let lo = scratch.bounds[base + tile] as usize;
                let hi = scratch.bounds[base + tile + 1] as usize;
                if lo == hi {
                    continue;
                }
                let row = rows(v as VertexId);
                scratch.sources.push(v as VertexId);
                scratch.seg_row_start.push(lo);
                scratch.us.extend_from_slice(&row[lo..hi]);
                scratch.offs.push(scratch.us.len());
            }
            if scratch.us.is_empty() {
                return acc;
            }
            match kind {
                BlockKind::Estimate => oracle.estimate_block(
                    &scratch.sources,
                    &scratch.offs,
                    &scratch.us,
                    &mut scratch.out,
                ),
                BlockKind::Jaccard => oracle.jaccard_block(
                    &scratch.sources,
                    &scratch.offs,
                    &scratch.us,
                    &mut scratch.out,
                ),
            }
            for (k, (&v, &lo)) in scratch
                .sources
                .iter()
                .zip(&scratch.seg_row_start)
                .enumerate()
            {
                let (a, b2) = (scratch.offs[k], scratch.offs[k + 1]);
                acc = fold(acc, v, lo, &scratch.us[a..b2], &scratch.out[a..b2]);
            }
            acc
        },
        combine,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::{gen, orient_by_degree};

    #[test]
    fn grains_are_positive_and_bounded_by_n() {
        for g in [gen::kronecker(9, 8, 1), gen::complete(32), gen::path(100)] {
            let dag = orient_by_degree(&g);
            for pow in 1..=3 {
                let grain = degree_power_grain(&dag, pow);
                assert!(grain >= 1);
                assert!(grain <= dag.num_vertices().max(1));
            }
        }
    }

    #[test]
    fn skewed_dag_gets_finer_grain_than_uniform() {
        pg_parallel::with_threads(8, || {
            // Degree orientation caps most out-degrees, so skew a DAG the
            // only way possible: a "hub" whose neighbors all out-rank it.
            // hub 0 — heavies 1..=k — each heavy with k+1 private leaves,
            // so every heavy's degree exceeds the hub's and the hub's
            // out-neighborhood is all k heavies.
            let k = 50u32;
            let mut edges: Vec<(u32, u32)> = (1..=k).map(|h| (0, h)).collect();
            let mut next = k + 1;
            for h in 1..=k {
                for _ in 0..k + 1 {
                    edges.push((h, next));
                    next += 1;
                }
            }
            let skewed = pg_graph::CsrGraph::from_edges(next as usize, &edges);
            let dag = orient_by_degree(&skewed);
            assert_eq!(dag.out_degree(0), k as usize, "hub must keep its out-edges");
            let uniform = gen::cycle(next as usize);
            let gs = degree_power_grain(&dag, 2);
            let gu = degree_power_grain(&orient_by_degree(&uniform), 2);
            assert!(gs < gu, "skewed grain {gs} should be < uniform grain {gu}");
        });
    }

    #[test]
    fn empty_dag() {
        let g = pg_graph::CsrGraph::from_edges(0, &[]);
        let dag = orient_by_degree(&g);
        assert_eq!(degree_power_grain(&dag, 1), 1);
    }

    #[test]
    fn plan_tiles_picks_default_path_for_degenerate_shapes() {
        pg_parallel::with_tile_bytes(1 << 14, || {
            assert_eq!(plan_tiles(0, 64), None, "no destinations");
            assert_eq!(plan_tiles(100, 0), None, "no window");
            assert_eq!(plan_tiles(16, 64), None, "store fits in cache");
            assert_eq!(plan_tiles(1000, 1 << 20), None, "one window overflows");
        });
    }

    #[test]
    fn plan_tiles_shapes_follow_the_budget() {
        pg_parallel::with_tile_bytes(1 << 14, || {
            let p = plan_tiles(10_000, 64).expect("tiling profitable");
            assert_eq!(p.tile_ids, (1 << 14) / 64);
            assert_eq!(p.batch, p.tile_ids, "balanced batch = tile shape");
            // Never more tile ids than sets.
            let q = plan_tiles(700, 64).expect("3× the budget still tiles");
            assert!(q.tile_ids <= 700);
        });
        // A near-usize::MAX budget (the tests' forced-decline idiom) must
        // decline without overflowing the 2× headroom check.
        pg_parallel::with_tile_bytes(usize::MAX, || {
            assert_eq!(plan_tiles(10_000, 64), None);
        });
    }
}
