//! Degree-aware scheduling grains for the DAG kernels.
//!
//! Triangle and 4-clique counting iterate vertices, but the work behind a
//! vertex scales with powers of its oriented out-degree — on power-law
//! graphs the hubs would serialize a count-based schedule (one chunk drags
//! the join while every other worker idles). These helpers summarize the
//! degree profile with one cheap parallel pass and feed it to
//! [`pg_parallel::weighted_grain`], which shrinks the chunk size until the
//! dynamic scheduler can isolate hubs.

use pg_graph::{OrientedDag, VertexId};
use pg_parallel::{map_reduce, weighted_grain};

/// `(Σ w(v), max w(v))` over all vertices, where `w(v) = d⁺(v)^pow`
/// (saturating — degree profiles of billion-edge graphs stay finite).
fn degree_power_stats(dag: &OrientedDag, pow: u32) -> (u64, u64) {
    map_reduce(
        dag.num_vertices(),
        || (0u64, 0u64),
        |(sum, max), v| {
            let d = dag.out_degree(v as VertexId) as u64;
            let w = d.saturating_pow(pow);
            (sum.saturating_add(w), max.max(w))
        },
        |(s1, m1), (s2, m2)| (s1.saturating_add(s2), m1.max(m2)),
    )
}

/// Scheduling grain for kernels whose per-vertex work is `d⁺(v)^pow`:
/// `pow = 1` for per-edge sketch estimators (one `O(B/W)`/`O(k)` call per
/// edge), `pow = 2` for wedge kernels (exact triangle counting: a sum of
/// `O(d⁺)` merges per vertex), `pow = 3` for 4-clique kernels (each
/// oriented edge materializes a `C3` set and intersects every member
/// against it). The generic oracle kernels pick `pow` from
/// [`crate::oracle::IntersectionOracle::degree_scaled_cost`].
pub(crate) fn degree_power_grain(dag: &OrientedDag, pow: u32) -> usize {
    let (total, max) = degree_power_stats(dag, pow);
    weighted_grain(dag.num_vertices(), total, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::{gen, orient_by_degree};

    #[test]
    fn grains_are_positive_and_bounded_by_n() {
        for g in [gen::kronecker(9, 8, 1), gen::complete(32), gen::path(100)] {
            let dag = orient_by_degree(&g);
            for pow in 1..=3 {
                let grain = degree_power_grain(&dag, pow);
                assert!(grain >= 1);
                assert!(grain <= dag.num_vertices().max(1));
            }
        }
    }

    #[test]
    fn skewed_dag_gets_finer_grain_than_uniform() {
        pg_parallel::with_threads(8, || {
            // Degree orientation caps most out-degrees, so skew a DAG the
            // only way possible: a "hub" whose neighbors all out-rank it.
            // hub 0 — heavies 1..=k — each heavy with k+1 private leaves,
            // so every heavy's degree exceeds the hub's and the hub's
            // out-neighborhood is all k heavies.
            let k = 50u32;
            let mut edges: Vec<(u32, u32)> = (1..=k).map(|h| (0, h)).collect();
            let mut next = k + 1;
            for h in 1..=k {
                for _ in 0..k + 1 {
                    edges.push((h, next));
                    next += 1;
                }
            }
            let skewed = pg_graph::CsrGraph::from_edges(next as usize, &edges);
            let dag = orient_by_degree(&skewed);
            assert_eq!(dag.out_degree(0), k as usize, "hub must keep its out-edges");
            let uniform = gen::cycle(next as usize);
            let gs = degree_power_grain(&dag, 2);
            let gu = degree_power_grain(&orient_by_degree(&uniform), 2);
            assert!(gs < gu, "skewed grain {gs} should be < uniform grain {gu}");
        });
    }

    #[test]
    fn empty_dag() {
        let g = pg_graph::CsrGraph::from_edges(0, &[]);
        let dag = orient_by_degree(&g);
        assert_eq!(degree_power_grain(&dag, 1), 1);
    }
}
