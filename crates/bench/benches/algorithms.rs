//! Criterion benchmarks of the end-to-end algorithms (Figs. 4–7 substance):
//! exact vs PG-BF vs PG-1H for Triangle Counting and Jarvis–Patrick
//! clustering on a Kronecker graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_graph::{gen, orient_by_degree};
use probgraph::algorithms::clustering::{jarvis_patrick_exact, jarvis_patrick_pg, SimilarityKind};
use probgraph::algorithms::triangles;
use probgraph::{PgConfig, ProbGraph, Representation};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let g = gen::kronecker(11, 16, 9);
    let dag = orient_by_degree(&g);
    let cfg_bf = PgConfig::new(Representation::Bloom { b: 2 }, 0.25);
    let cfg_1h = PgConfig::new(Representation::OneHash, 0.25);
    let dag_bf = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg_bf);
    let dag_1h = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg_1h);
    let full_bf = ProbGraph::build(&g, &cfg_bf);
    let full_1h = ProbGraph::build(&g, &cfg_1h);

    let mut group = c.benchmark_group("triangle_counting");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("exact", "kron-2^11"), |b| {
        b.iter(|| black_box(triangles::count_exact_on_dag(&dag)))
    });
    group.bench_function(BenchmarkId::new("pg_bf", "kron-2^11"), |b| {
        b.iter(|| black_box(triangles::count_approx_on_dag(&dag, &dag_bf)))
    });
    group.bench_function(BenchmarkId::new("pg_1h", "kron-2^11"), |b| {
        b.iter(|| black_box(triangles::count_approx_on_dag(&dag, &dag_1h)))
    });
    group.finish();

    let mut group = c.benchmark_group("clustering_common_neighbors");
    group.sample_size(20);
    let kind = SimilarityKind::CommonNeighbors;
    group.bench_function(BenchmarkId::new("exact", "kron-2^11"), |b| {
        b.iter(|| black_box(jarvis_patrick_exact(&g, kind, 2.0)))
    });
    group.bench_function(BenchmarkId::new("pg_bf", "kron-2^11"), |b| {
        b.iter(|| black_box(jarvis_patrick_pg(&g, &full_bf, kind, 2.0)))
    });
    group.bench_function(BenchmarkId::new("pg_1h", "kron-2^11"), |b| {
        b.iter(|| black_box(jarvis_patrick_pg(&g, &full_1h, kind, 2.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
