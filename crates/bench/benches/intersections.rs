//! Criterion microbenchmarks of the `|N_u ∩ N_v|` kernels (Table IV):
//! CSR merge, CSR galloping, Bloom AND+popcount, and MinHash sample merge,
//! across neighborhood-size regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_graph::gen;
use pg_sketch::{BloomCollection, BottomKCollection, MinHashCollection};
use probgraph::intersect::{gallop_count, merge_count};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let g = gen::erdos_renyi_gnm(2000, 2000 * 48, 7);
    let n = g.num_vertices();
    let bloom = BloomCollection::build(n, 1024, 2, 3, |i| g.neighbors(i as u32));
    let onehash = BottomKCollection::build(n, 32, 3, |i| g.neighbors(i as u32));
    let khash = MinHashCollection::build(n, 32, 3, |i| g.neighbors(i as u32));
    let pairs: Vec<(usize, usize)> = (0..256)
        .map(|i| ((i * 7919) % n, (i * 104_729) % n))
        .collect();

    let mut group = c.benchmark_group("intersection_kernels");
    group.bench_function(BenchmarkId::new("csr_merge", "d~96"), |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                acc += merge_count(g.neighbors(u as u32), g.neighbors(v as u32));
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("csr_gallop", "d~96"), |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                let (a, b) = (g.neighbors(u as u32), g.neighbors(v as u32));
                let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                acc += gallop_count(s, l);
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("bf_and_popcnt", "B=1024,b=2"), |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                acc += bloom.and_ones(u, v);
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("mh_1hash", "k=32"), |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                acc += onehash.matches(u, v);
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("mh_khash", "k=32"), |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                acc += khash.matches(u, v);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
