//! Criterion benchmarks of sketch construction (Table V): building the
//! full per-neighborhood collection for each representation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_graph::gen;
use probgraph::{PgConfig, ProbGraph, Representation};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let g = gen::kronecker(12, 16, 5);
    let mut group = c.benchmark_group("sketch_construction");
    group.sample_size(20);
    for (label, rep) in [
        ("bloom_b1", Representation::Bloom { b: 1 }),
        ("bloom_b4", Representation::Bloom { b: 4 }),
        ("khash", Representation::KHash),
        ("onehash", Representation::OneHash),
        ("kmv", Representation::Kmv),
    ] {
        let cfg = PgConfig::new(rep, 0.25);
        group.bench_function(BenchmarkId::new(label, "kron-2^12-ef16"), |bch| {
            bch.iter(|| black_box(ProbGraph::build(&g, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
