//! Microbenchmarks of the fused sketch-intersection kernels against their
//! naive multi-pass counterparts (the implementations the fusion replaced),
//! plus the batched multi-hash bucketing used at construction time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_graph::gen;
use pg_hash::HashFamily;
use pg_sketch::bitvec::{and_count_words, and_or_ones_words, count_ones_words};
use pg_sketch::BloomCollection;
use std::hint::black_box;

fn bench_fused_kernels(c: &mut Criterion) {
    let g = gen::erdos_renyi_gnm(2000, 2000 * 48, 7);
    let n = g.num_vertices();
    let bloom = BloomCollection::build(n, 1024, 2, 3, |i| g.neighbors(i as u32));
    let pairs: Vec<(usize, usize)> = (0..256)
        .map(|i| ((i * 7919) % n, (i * 104_729) % n))
        .collect();

    let mut group = c.benchmark_group("fused_kernels");
    group.bench_function(BenchmarkId::new("and_fused", "B=1024"), |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                acc += and_count_words(bloom.words(u), bloom.words(v));
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("and_naive_materialize", "B=1024"), |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                let anded: Vec<u64> = bloom
                    .words(u)
                    .iter()
                    .zip(bloom.words(v))
                    .map(|(a, b)| a & b)
                    .collect();
                acc += count_ones_words(&anded);
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("pair_ones_fused", "B=1024"), |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                let p = bloom.pair_ones(u, v);
                acc += p.and_ones + p.or_ones + p.a_ones + p.b_ones;
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("pair_ones_general", "B=1024"), |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                let p = and_or_ones_words(bloom.words(u), bloom.words(v));
                acc += p.and_ones + p.or_ones + p.a_ones + p.b_ones;
            }
            black_box(acc)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("batched_hashing");
    let keys: Vec<u64> = (0..4096u64).map(|i| i * 2654435761).collect();
    for b in [2usize, 4, 8] {
        let family = HashFamily::new(b, 11);
        group.bench_function(BenchmarkId::new("buckets_streaming", b), |bch| {
            bch.iter(|| {
                let mut acc = 0u32;
                for &k in &keys {
                    family.for_each_bucket(k, 1 << 13, |pos| acc = acc.wrapping_add(pos));
                }
                black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new("buckets_scalar", b), |bch| {
            bch.iter(|| {
                let mut acc = 0u32;
                for &k in &keys {
                    for i in 0..b {
                        acc = acc.wrapping_add(family.bucket(i, k, 1 << 13) as u32);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    // End-to-end construction: the Table V hot loop with streaming batched
    // bucketing vs a scalar-hash reference build. Single-threaded on both
    // sides so the comparison isolates the hashing kernel rather than
    // fork/join overhead.
    let mut group = c.benchmark_group("bloom_build");
    for b in [2usize, 4] {
        group.bench_function(BenchmarkId::new("batched", b), |bch| {
            bch.iter(|| {
                pg_parallel::with_threads(1, || {
                    black_box(BloomCollection::build(n, 1024, b, 3, |i| {
                        g.neighbors(i as u32)
                    }))
                })
            })
        });
        group.bench_function(BenchmarkId::new("scalar_reference", b), |bch| {
            let family = HashFamily::new(b, 3);
            bch.iter(|| {
                // black_box keeps the filter size runtime-opaque, exactly
                // as it is inside BloomCollection::build — a constant here
                // would let LLVM elide bounds checks the real code pays.
                let bits = black_box(1024usize);
                let wps = bits / 64;
                let mut data = vec![0u64; n * wps];
                for v in 0..n {
                    let window = &mut data[v * wps..(v + 1) * wps];
                    for &x in g.neighbors(v as u32) {
                        for i in 0..b {
                            let pos = family.bucket(i, x as u64, bits);
                            window[pos / 64] |= 1u64 << (pos % 64);
                        }
                    }
                }
                black_box(data)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fused_kernels);
criterion_main!(benches);
