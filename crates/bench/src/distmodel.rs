//! Communication-volume model for the distributed-memory analysis of
//! §VIII-F — pinned against the real exchange.
//!
//! The paper's distributed claim is about transferred bytes: sketches are
//! small and never split across nodes, so exchanging sketches instead of
//! raw CSR neighborhoods cuts communication "up to 4×". The repo now has a
//! real multi-process exchange (`probgraph::exchange`) that counts bytes
//! on the socket, so this model is no longer free to hand-wave; it must
//! predict those measured bytes.
//!
//! Two early modeling bugs the measured exchange exposed, both fixed here:
//!
//! 1. **Per-cut-edge double counting.** The old model charged one sketch
//!    per *cut edge*. A boundary vertex referenced by many vertices of the
//!    same remote part is shipped **once per (vertex, remote part)** —
//!    both in any sane implementation and in the exact baseline the ratio
//!    divides by. The model now deduplicates exactly like the exchange's
//!    ship sets.
//! 2. **Hardcoded wire sizes.** Payload bytes were guessed from the
//!    in-memory layout (e.g. `4k` for 1-hash, whose wire format actually
//!    carries 8 bytes per stored element plus per-set tables). Sizes are
//!    now **derived from `snapshot_to_bytes` itself** ([`wire_cost`]), so
//!    they cannot drift from the serializer.
//!
//! The model mirrors the exchange protocol term for term: per ordered
//! pair, ship-set rows are chunked, each chunk pays one frame header plus
//! the snapshot's fixed overhead, and an empty ship set still costs its
//! one handshake frame. For representations whose snapshot arrays are
//! per-set aligned (all of them; the probed marginals are constant) the
//! prediction matches the measured byte count exactly.

use pg_graph::{CsrGraph, OrientedDag, VertexId};
use pg_sketch::{SketchParams, StratifiedParams};
use probgraph::pg::BfEstimator;
use probgraph::ProbGraph;

/// Frame header bytes per payload — must match
/// `probgraph::exchange::FRAME_HEADER_LEN` (asserted in the tests).
pub const FRAME_OVERHEAD: u64 = 40;

/// Fixed bytes of an exact-rows payload beyond its per-set/per-element
/// terms (the row-count word).
pub const EXACT_PAYLOAD_FIXED: u64 = 4;

/// Bytes on the wire for one full intersection round over all part pairs.
#[derive(Clone, Copy, Debug)]
pub struct CommVolume {
    /// Exact CSR neighborhood exchange.
    pub exact_bytes: u64,
    /// Sketch exchange.
    pub sketch_bytes: u64,
}

impl CommVolume {
    /// `exact / sketch` — the reduction factor the paper reports. When
    /// **both** sides are zero (single part, edgeless graph) there is no
    /// communication to reduce and the ratio is `1.0`, not `0/0`'s NaN or
    /// the old `INFINITY`.
    pub fn reduction(&self) -> f64 {
        if self.exact_bytes == 0 && self.sketch_bytes == 0 {
            return 1.0;
        }
        self.exact_bytes as f64 / self.sketch_bytes as f64
    }
}

/// Balanced pseudo-random assignment of vertices to `p` parts.
pub fn random_partition(n: usize, p: usize, seed: u64) -> Vec<u32> {
    assert!(p >= 1);
    (0..n)
        .map(|v| (pg_hash::splitmix64_at(seed ^ v as u64) % p as u64) as u32)
        .collect()
}

/// Wire-format cost coefficients of one snapshot payload, **probed from
/// the serializer**: a payload of `s` sets holding `e` stored elements in
/// total costs `fixed_per_payload + per_set·s + per_elem·e` bytes.
#[derive(Clone, Copy, Debug)]
pub struct WireCost {
    /// Header + section table + trailer of an empty snapshot.
    pub fixed_per_payload: u64,
    /// Marginal bytes per additional (empty) set.
    pub per_set: u64,
    /// Marginal bytes per stored element (0 for fixed-size sketches).
    pub per_elem: u64,
    /// Stored elements cap per set (`k` for bottom-k/KMV, 0 = none).
    pub elem_cap: usize,
}

impl WireCost {
    /// Payload bytes for `sets` rows storing `elems` elements in total
    /// (already capped by [`WireCost::capped_elems`]).
    pub fn payload_bytes(&self, sets: u64, elems: u64) -> u64 {
        self.fixed_per_payload + self.per_set * sets + self.per_elem * elems
    }

    /// Stored elements for a row of `degree` neighbors under this
    /// representation's cap.
    pub fn capped_elems(&self, degree: usize) -> u64 {
        if self.per_elem == 0 {
            0
        } else {
            degree.min(self.elem_cap) as u64
        }
    }
}

/// Derives the [`WireCost`] of `params` by serializing three micro
/// snapshots (0 sets; 1 empty set; 1 single-element set) through the same
/// `build_rows` + `snapshot_to_bytes` path the exchange workers use. The
/// coefficients therefore cannot drift from the wire format — if the
/// snapshot layout changes, so does the model.
pub fn wire_cost(params: SketchParams, est: BfEstimator, seed: u64) -> WireCost {
    fn snap_len(params: SketchParams, est: BfEstimator, seed: u64, rows: &[&[u32]]) -> u64 {
        let pg = ProbGraph::build_rows(rows.len(), params, est, seed, |i| rows[i]);
        pg.snapshot_to_bytes().len() as u64
    }
    let b00 = snap_len(params, est, seed, &[]);
    let b10 = snap_len(params, est, seed, &[&[]]);
    let b11 = snap_len(params, est, seed, &[&[7]]);
    let elem_cap = match params {
        SketchParams::OneHash { k } | SketchParams::Kmv { k } => k,
        _ => 0,
    };
    WireCost {
        fixed_per_payload: b00,
        per_set: b10 - b00,
        per_elem: b11 - b10,
        elem_cap,
    }
}

/// Wire-format cost coefficients of one **stratified** snapshot payload:
/// the fixed overhead covers the per-payload stratum parameter table, and
/// the per-set/per-element marginals are **per stratum** — a shipped
/// vertex is charged its own stratum's bytes, not a uniform average.
/// Probed from the serializer exactly like [`WireCost`].
#[derive(Clone, Debug)]
pub struct StratifiedWireCost {
    /// Header + section table + stratum parameter table of an empty
    /// stratified snapshot.
    pub fixed_per_payload: u64,
    /// Marginal bytes per additional empty set, by stratum (includes the
    /// set's assignment byte).
    pub per_set: Vec<u64>,
    /// Marginal bytes per stored element, by stratum.
    pub per_elem: Vec<u64>,
    /// Stored elements cap per set, by stratum (0 = none).
    pub elem_cap: Vec<usize>,
}

impl StratifiedWireCost {
    /// Stored elements for a row of `degree` neighbors in stratum `j`.
    pub fn capped_elems(&self, j: usize, degree: usize) -> u64 {
        if self.per_elem[j] == 0 {
            0
        } else {
            degree.min(self.elem_cap[j]) as u64
        }
    }
}

/// Derives the [`StratifiedWireCost`] of a resolved per-set geometry by
/// serializing micro snapshots through `build_rows_stratified` +
/// `snapshot_to_bytes` — one (empty set, single-element set) probe pair
/// per stratum against the zero-set baseline, so every stratum's marginal
/// comes from the real wire format of the full stratum table.
pub fn stratified_wire_cost(
    sp: &StratifiedParams,
    est: BfEstimator,
    seed: u64,
) -> StratifiedWireCost {
    let snap_len = |assign: Vec<u8>, rows: &[&[u32]]| -> u64 {
        let sub = StratifiedParams::new(sp.strata().to_vec(), assign);
        let pg = ProbGraph::build_rows_stratified(rows.len(), sub, est, seed, |i| rows[i]);
        pg.snapshot_to_bytes().len() as u64
    };
    let b00 = snap_len(Vec::new(), &[]);
    let n_strata = sp.n_strata();
    let mut per_set = Vec::with_capacity(n_strata);
    let mut per_elem = Vec::with_capacity(n_strata);
    let mut elem_cap = Vec::with_capacity(n_strata);
    for j in 0..n_strata {
        let bj0 = snap_len(vec![j as u8], &[&[]]);
        let bj1 = snap_len(vec![j as u8], &[&[7]]);
        per_set.push(bj0 - b00);
        per_elem.push(bj1 - bj0);
        elem_cap.push(match sp.strata()[j] {
            SketchParams::OneHash { k } | SketchParams::Kmv { k } => k,
            _ => 0,
        });
    }
    StratifiedWireCost {
        fixed_per_payload: b00,
        per_set,
        per_elem,
        elem_cap,
    }
}

/// Per-pair ship-set statistics: the deduplicated boundary rows `q` must
/// send `r` and their degree mass.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShipStat {
    /// `|S(q→r)|` — boundary vertices, counted once per remote part.
    pub sets: u64,
    /// Total out-degree of those vertices (exact-payload elements).
    pub elems_raw: u64,
    /// Total stored sketch elements after the per-set cap.
    pub elems_capped: u64,
}

/// Computes [`ShipStat`] for every ordered part pair with the same
/// dedupe rule as the exchange: `out[q][r]` covers the distinct vertices
/// owned by `q` that appear in the `N⁺` row of at least one vertex owned
/// by `r`.
pub fn ship_stats(
    dag: &OrientedDag,
    parts: &[u32],
    p: usize,
    cost: &WireCost,
) -> Vec<Vec<ShipStat>> {
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); p * p];
    for v in 0..dag.num_vertices() {
        let r = parts[v] as usize;
        for &u in dag.neighbors_plus(v as VertexId) {
            let q = parts[u as usize] as usize;
            if q != r {
                buckets[q * p + r].push(u);
            }
        }
    }
    let mut out = vec![vec![ShipStat::default(); p]; p];
    for (idx, b) in buckets.iter_mut().enumerate() {
        b.sort_unstable();
        b.dedup();
        let stat = &mut out[idx / p][idx % p];
        stat.sets = b.len() as u64;
        for &u in b.iter() {
            let d = dag.out_degree(u);
            stat.elems_raw += d as u64;
            stat.elems_capped += cost.capped_elems(d);
        }
    }
    out
}

/// Predicted bytes per ordered part pair `(sketch, exact)`, mirroring the
/// exchange protocol exactly: ship sets are chunked into `chunk_sets`-row
/// payloads, each payload pays one [`FRAME_OVERHEAD`] header plus the
/// format's fixed cost, and an empty ship set still costs one handshake
/// frame. Diagonal entries are zero.
pub fn model_pair_bytes(
    dag: &OrientedDag,
    parts: &[u32],
    p: usize,
    cost: &WireCost,
    chunk_sets: usize,
) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let chunk = chunk_sets.max(1) as u64;
    let stats = ship_stats(dag, parts, p, cost);
    let mut sketch = vec![vec![0u64; p]; p];
    let mut exact = vec![vec![0u64; p]; p];
    for q in 0..p {
        for r in 0..p {
            if q == r {
                continue;
            }
            let s = stats[q][r];
            if s.sets == 0 {
                sketch[q][r] = FRAME_OVERHEAD;
                exact[q][r] = FRAME_OVERHEAD;
                continue;
            }
            let n_chunks = s.sets.div_ceil(chunk);
            sketch[q][r] = n_chunks * (FRAME_OVERHEAD + cost.fixed_per_payload)
                + cost.per_set * s.sets
                + cost.per_elem * s.elems_capped;
            exact[q][r] =
                n_chunks * (FRAME_OVERHEAD + EXACT_PAYLOAD_FIXED) + 4 * s.sets + 4 * s.elems_raw;
        }
    }
    (sketch, exact)
}

/// Stratified sibling of [`model_pair_bytes`]: each shipped vertex is
/// charged **its own stratum's** per-set and per-element wire bytes
/// (`sp.assign()[u]` picks the stratum), mirroring the heterogeneous
/// payloads the exchange actually serializes. The exact baseline is
/// unchanged — stratification only reshapes the sketch side.
pub fn model_pair_bytes_stratified(
    dag: &OrientedDag,
    parts: &[u32],
    p: usize,
    sp: &StratifiedParams,
    cost: &StratifiedWireCost,
    chunk_sets: usize,
) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let chunk = chunk_sets.max(1) as u64;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); p * p];
    for v in 0..dag.num_vertices() {
        let r = parts[v] as usize;
        for &u in dag.neighbors_plus(v as VertexId) {
            let q = parts[u as usize] as usize;
            if q != r {
                buckets[q * p + r].push(u);
            }
        }
    }
    let mut sketch = vec![vec![0u64; p]; p];
    let mut exact = vec![vec![0u64; p]; p];
    for (idx, b) in buckets.iter_mut().enumerate() {
        let (q, r) = (idx / p, idx % p);
        if q == r {
            continue;
        }
        b.sort_unstable();
        b.dedup();
        if b.is_empty() {
            sketch[q][r] = FRAME_OVERHEAD;
            exact[q][r] = FRAME_OVERHEAD;
            continue;
        }
        let sets = b.len() as u64;
        let n_chunks = sets.div_ceil(chunk);
        let mut sketch_bytes = n_chunks * (FRAME_OVERHEAD + cost.fixed_per_payload);
        let mut elems_raw = 0u64;
        for &u in b.iter() {
            let j = sp.assign()[u as usize] as usize;
            let d = dag.out_degree(u);
            sketch_bytes += cost.per_set[j] + cost.per_elem[j] * cost.capped_elems(j, d);
            elems_raw += d as u64;
        }
        sketch[q][r] = sketch_bytes;
        exact[q][r] = n_chunks * (FRAME_OVERHEAD + EXACT_PAYLOAD_FIXED) + 4 * sets + 4 * elems_raw;
    }
    (sketch, exact)
}

/// Models one neighborhood-exchange round over the oriented DAG: total
/// predicted bytes for the sketch round and the exact-adjacency baseline,
/// shipping each boundary vertex **once per (vertex, remote part)**.
pub fn model_volume(
    dag: &OrientedDag,
    parts: &[u32],
    p: usize,
    cost: &WireCost,
    chunk_sets: usize,
) -> CommVolume {
    let (sketch, exact) = model_pair_bytes(dag, parts, p, cost, chunk_sets);
    CommVolume {
        exact_bytes: exact.iter().flatten().sum(),
        sketch_bytes: sketch.iter().flatten().sum(),
    }
}

/// Convenience: the model for a graph sketched under `cfg`-style inputs —
/// orients the graph by degree (the TC/4-clique orientation the exchange
/// uses) and probes the wire cost of the resolved parameters. Stratified
/// graphs route through the per-stratum probes and per-vertex charging.
pub fn model_volume_for(
    g: &CsrGraph,
    pg: &ProbGraph,
    parts: &[u32],
    p: usize,
    chunk_sets: usize,
) -> CommVolume {
    let dag = pg_graph::orient_by_degree(g);
    if let Some(sp) = pg.stratified_params() {
        let cost = stratified_wire_cost(sp, pg.bf_estimator(), pg.seed());
        let (sketch, exact) = model_pair_bytes_stratified(&dag, parts, p, sp, &cost, chunk_sets);
        return CommVolume {
            exact_bytes: exact.iter().flatten().sum(),
            sketch_bytes: sketch.iter().flatten().sum(),
        };
    }
    let cost = wire_cost(pg.params(), pg.bf_estimator(), pg.seed());
    model_volume(&dag, parts, p, &cost, chunk_sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::{gen, orient_by_degree};
    use probgraph::{PgConfig, Representation};

    #[test]
    fn partition_is_balanced_and_deterministic() {
        let p = random_partition(10_000, 4, 9);
        assert_eq!(p, random_partition(10_000, 4, 9));
        for part in 0..4u32 {
            let cnt = p.iter().filter(|&&x| x == part).count();
            assert!((2000..3000).contains(&cnt), "part {part}: {cnt}");
        }
    }

    #[cfg(unix)]
    #[test]
    fn frame_overhead_matches_the_exchange() {
        assert_eq!(
            FRAME_OVERHEAD as usize,
            probgraph::exchange::FRAME_HEADER_LEN
        );
    }

    #[test]
    fn single_part_has_no_communication_and_reduction_one() {
        let g = gen::complete(20);
        let dag = orient_by_degree(&g);
        let parts = vec![0u32; 20];
        let cost = WireCost {
            fixed_per_payload: 100,
            per_set: 64,
            per_elem: 0,
            elem_cap: 0,
        };
        let v = model_volume(&dag, &parts, 1, &cost, 512);
        assert_eq!(v.exact_bytes, 0);
        assert_eq!(v.sketch_bytes, 0);
        // The 0/0 round trips to "no reduction", not infinity or NaN.
        assert_eq!(v.reduction(), 1.0);
    }

    #[test]
    fn boundary_vertices_are_charged_once_per_remote_part() {
        // Star: center 0, leaves 1..=4. Degree orientation points every
        // leaf at the center, so N⁺(leaf) = {0} and N⁺(0) = {}.
        let g = gen::star(5);
        let dag = orient_by_degree(&g);
        assert_eq!(
            dag.out_degree(0),
            0,
            "center must sink under degree orientation"
        );
        // Center in part 0, all leaves in part 1: four cut edges all
        // referencing the single boundary vertex 0.
        let parts = vec![0u32, 1, 1, 1, 1];
        let cost = WireCost {
            fixed_per_payload: 96,
            per_set: 72,
            per_elem: 0,
            elem_cap: 0,
        };
        let (sketch, exact) = model_pair_bytes(&dag, &parts, 2, &cost, 512);
        // One payload chunk shipping exactly ONE set (not four): the old
        // per-cut-edge model would have charged 4 × per_set here.
        assert_eq!(sketch[0][1], FRAME_OVERHEAD + 96 + 72);
        assert_eq!(exact[0][1], FRAME_OVERHEAD + EXACT_PAYLOAD_FIXED + 4);
        // Nothing flows the other way beyond the handshake frame.
        assert_eq!(sketch[1][0], FRAME_OVERHEAD);
        assert_eq!(exact[1][0], FRAME_OVERHEAD);
    }

    #[test]
    fn wire_cost_is_probed_not_hardcoded() {
        // 1-hash wire payloads carry 8 bytes per stored element (element
        // + its hash) plus per-set tables — the old `4k` guess undershot
        // by more than half. The probe must see the real marginals.
        let cost = wire_cost(SketchParams::OneHash { k: 16 }, BfEstimator::default(), 42);
        assert_eq!(cost.per_elem, 8, "bottom-k stores element + hash");
        assert!(
            cost.per_set >= 12,
            "per-set offset/len/size tables undercounted: {}",
            cost.per_set
        );
        assert_eq!(cost.elem_cap, 16);

        // Fixed-size sketches have no per-element term.
        let bf = wire_cost(
            SketchParams::Bloom {
                bits_per_set: 256,
                b: 2,
            },
            BfEstimator::default(),
            42,
        );
        assert_eq!(bf.per_elem, 0);
        assert_eq!(bf.per_set, 256 / 8 + 4 + 4, "filter words + ones + sizes");

        let kmv = wire_cost(SketchParams::Kmv { k: 8 }, BfEstimator::default(), 42);
        assert_eq!(kmv.per_elem, 8, "KMV stores a 64-bit hash per element");
    }

    #[test]
    fn sketches_reduce_volume_on_dense_graphs() {
        // Dense graph, 25 % budget measured against the oriented DAG the
        // wire actually ships (a sketch replaces an `N⁺` row, so `s` is a
        // fraction of that row's bytes): exact rows cost ~4·d⁺ bytes, the
        // sketch about a quarter of that plus overheads.
        let g = gen::erdos_renyi_gnm(300, 300 * 75, 3);
        let dag = orient_by_degree(&g);
        let dag_bytes = 4 * (g.num_vertices() + 1) + 4 * g.num_edges();
        let pg = ProbGraph::build_dag(
            &dag,
            dag_bytes,
            &PgConfig::new(Representation::Bloom { b: 2 }, 0.25),
        );
        let parts = random_partition(300, 4, 1);
        let cost = wire_cost(pg.params(), pg.bf_estimator(), pg.seed());
        let v = model_volume(&dag, &parts, 4, &cost, 512);
        assert!(v.reduction() > 2.0, "reduction={}", v.reduction());
    }

    #[test]
    fn bigger_sketches_shrink_the_modeled_reduction() {
        let g = gen::erdos_renyi_gnm(200, 200 * 50, 5);
        let dag = orient_by_degree(&g);
        let parts = random_partition(200, 2, 2);
        let small = WireCost {
            fixed_per_payload: 96,
            per_set: 32,
            per_elem: 0,
            elem_cap: 0,
        };
        let large = WireCost {
            fixed_per_payload: 96,
            per_set: 128,
            per_elem: 0,
            elem_cap: 0,
        };
        let rs = model_volume(&dag, &parts, 2, &small, 512).reduction();
        let rl = model_volume(&dag, &parts, 2, &large, 512).reduction();
        assert!(
            rs > rl,
            "smaller sketches must model a larger reduction: {rs} vs {rl}"
        );
    }

    #[test]
    fn stratified_wire_cost_probes_per_stratum_marginals() {
        use pg_sketch::StrataSpec;
        let g = gen::erdos_renyi_gnm(800, 24_000, 3);
        let cfg = PgConfig::stratified(Representation::OneHash, 0.3, StrataSpec::skewed_default());
        let pg = ProbGraph::build(&g, &cfg);
        let sp = pg
            .stratified_params()
            .expect("collapsed to uniform")
            .clone();
        let cost = stratified_wire_cost(&sp, pg.bf_estimator(), pg.seed());
        assert_eq!(cost.per_set.len(), sp.n_strata());
        // Every stratum stores element + hash on the wire, and the wider
        // stratum 0 cannot cap fewer elements than the base stratum.
        for j in 0..sp.n_strata() {
            assert_eq!(cost.per_elem[j], 8, "stratum {j}");
            match sp.strata()[j] {
                SketchParams::OneHash { k } => assert_eq!(cost.elem_cap[j], k),
                other => panic!("unexpected stratum params {other:?}"),
            }
        }
        assert!(cost.elem_cap[0] > *cost.elem_cap.last().unwrap());
        // The stratified fixed overhead carries the stratum table on top
        // of the uniform snapshot overhead.
        let uniform = wire_cost(sp.strata()[0], pg.bf_estimator(), pg.seed());
        assert!(cost.fixed_per_payload > uniform.fixed_per_payload);
    }

    /// Stratified sibling of the exact pinning test below: per-vertex,
    /// per-stratum charging must reproduce the measured socket bytes of a
    /// stratified exchange byte for byte.
    #[cfg(unix)]
    #[test]
    fn stratified_model_matches_measured_exchange_bytes_exactly() {
        use pg_sketch::StrataSpec;
        use probgraph::exchange::{run_exchange, ExchangeOptions};
        let g = gen::erdos_renyi_gnm(800, 24_000, 3);
        let dag = orient_by_degree(&g);
        let n = dag.num_vertices();
        for rep in [Representation::Bloom { b: 2 }, Representation::OneHash] {
            let cfg = PgConfig::stratified(rep, 0.3, StrataSpec::skewed_default());
            let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
            let sp = pg
                .stratified_params()
                .unwrap_or_else(|| panic!("{rep:?}: collapsed to uniform"));
            let parts = random_partition(n, 3, 7);
            let opts = ExchangeOptions {
                chunk_sets: 64,
                ..ExchangeOptions::default()
            };
            let report = run_exchange(&dag, &pg, &parts, 3, &opts).expect("exchange runs");
            let cost = stratified_wire_cost(sp, pg.bf_estimator(), pg.seed());
            let (sketch, exact) = model_pair_bytes_stratified(&dag, &parts, 3, sp, &cost, 64);
            assert_eq!(
                sketch, report.sketch_pair_bytes,
                "{rep:?}: modeled stratified sketch bytes diverge from the socket"
            );
            assert_eq!(
                exact, report.exact_pair_bytes,
                "{rep:?}: modeled exact bytes diverge from the socket"
            );
        }
    }

    /// The pinning test the whole module exists for: the model's per-pair
    /// predictions must equal the bytes the real multi-process exchange
    /// counts on its sockets, byte for byte.
    #[cfg(unix)]
    #[test]
    fn model_matches_measured_exchange_bytes_exactly() {
        use probgraph::exchange::{run_exchange, ExchangeOptions};
        let g = gen::kronecker(8, 8, 42);
        let dag = orient_by_degree(&g);
        let n = dag.num_vertices();
        for rep in [Representation::Bloom { b: 2 }, Representation::OneHash] {
            let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &PgConfig::new(rep, 0.25));
            let parts = random_partition(n, 3, 7);
            let opts = ExchangeOptions {
                chunk_sets: 64,
                ..ExchangeOptions::default()
            };
            let report = run_exchange(&dag, &pg, &parts, 3, &opts).expect("exchange runs");
            let cost = wire_cost(pg.params(), pg.bf_estimator(), pg.seed());
            let (sketch, exact) = model_pair_bytes(&dag, &parts, 3, &cost, 64);
            assert_eq!(
                sketch, report.sketch_pair_bytes,
                "{rep:?}: modeled sketch bytes diverge from the socket"
            );
            assert_eq!(
                exact, report.exact_pair_bytes,
                "{rep:?}: modeled exact bytes diverge from the socket"
            );
        }
    }
}
