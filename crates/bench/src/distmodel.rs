//! Communication-volume model for the distributed-memory analysis of
//! §VIII-F.
//!
//! The paper's distributed claim is purely about transferred bytes: because
//! sketches are small and never split across nodes, exchanging sketches
//! instead of raw CSR neighborhoods cuts communication "up to 4×". With no
//! multi-node fabric available we reproduce the *model*: partition the
//! vertices into `p` parts (random balanced partition, the default in the
//! absence of a partitioner), and for every cut edge account the bytes one
//! endpoint must ship so the other can intersect neighborhoods:
//!
//! * exact: the full neighborhood, `4 · d_v` bytes,
//! * ProbGraph: one fixed-size sketch, `B/8` (BF) or `4k` (MinHash) bytes.

use pg_graph::{CsrGraph, VertexId};

/// Bytes on the wire for one full intersection round over all cut edges.
#[derive(Clone, Copy, Debug)]
pub struct CommVolume {
    /// Exact CSR neighborhood exchange.
    pub exact_bytes: u64,
    /// Sketch exchange.
    pub sketch_bytes: u64,
}

impl CommVolume {
    /// `exact / sketch` — the reduction factor the paper reports.
    pub fn reduction(&self) -> f64 {
        if self.sketch_bytes == 0 {
            f64::INFINITY
        } else {
            self.exact_bytes as f64 / self.sketch_bytes as f64
        }
    }
}

/// Balanced pseudo-random assignment of vertices to `p` parts.
pub fn random_partition(n: usize, p: usize, seed: u64) -> Vec<u32> {
    assert!(p >= 1);
    (0..n)
        .map(|v| (pg_hash::splitmix64_at(seed ^ v as u64) % p as u64) as u32)
        .collect()
}

/// Models one neighborhood-exchange round: for every cut edge `(u, v)` the
/// lower-ID endpoint ships its representation to the other's node.
pub fn model_volume(g: &CsrGraph, parts: &[u32], sketch_bytes_per_set: usize) -> CommVolume {
    let mut exact = 0u64;
    let mut sketch = 0u64;
    for (u, v) in g.edges() {
        if parts[u as usize] != parts[v as usize] {
            exact += 4 * g.degree(u as VertexId) as u64;
            sketch += sketch_bytes_per_set as u64;
        }
    }
    CommVolume {
        exact_bytes: exact,
        sketch_bytes: sketch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::gen;

    #[test]
    fn partition_is_balanced_and_deterministic() {
        let p = random_partition(10_000, 4, 9);
        assert_eq!(p, random_partition(10_000, 4, 9));
        for part in 0..4u32 {
            let cnt = p.iter().filter(|&&x| x == part).count();
            assert!((2000..3000).contains(&cnt), "part {part}: {cnt}");
        }
    }

    #[test]
    fn single_part_has_no_communication() {
        let g = gen::complete(20);
        let parts = vec![0u32; 20];
        let v = model_volume(&g, &parts, 64);
        assert_eq!(v.exact_bytes, 0);
        assert_eq!(v.sketch_bytes, 0);
    }

    #[test]
    fn sketches_reduce_volume_on_dense_graphs() {
        // Dense graph: degrees ~ 150, sketch = 64 bytes -> big reduction.
        let g = gen::erdos_renyi_gnm(300, 300 * 75, 3);
        let parts = random_partition(300, 4, 1);
        let v = model_volume(&g, &parts, 64);
        assert!(v.reduction() > 4.0, "reduction={}", v.reduction());
    }

    #[test]
    fn reduction_scales_with_degree_over_sketch_size() {
        let g = gen::erdos_renyi_gnm(200, 200 * 50, 5);
        let parts = random_partition(200, 2, 2);
        let small = model_volume(&g, &parts, 32).reduction();
        let large = model_volume(&g, &parts, 128).reduction();
        assert!((small / large - 4.0).abs() < 1e-9);
    }
}
