//! Table V: construction work and measured construction time of each
//! representation over all neighborhoods of a graph, plus parallel
//! construction speedup (the paper's claim: construction parallelizes
//! with low depth and is not a bottleneck).

use pg_bench::harness::{print_header, print_row, time_median};
use pg_bench::workloads::env_scale;
use pg_graph::gen;
use pg_parallel::{available_threads, with_threads};
use probgraph::workdepth;
use probgraph::{PgConfig, ProbGraph, Representation};

fn main() {
    let scale = env_scale(2);
    let g = gen::instance("bio-WormNet-v3", scale).unwrap();
    println!(
        "# Table V — sketch construction (bio-WormNet-v3 stand-in, n={}, m={}, PG_SCALE={scale})",
        g.num_vertices(),
        g.num_edges()
    );
    println!();
    let (bf_ops, kh_ops, oh_ops) = workdepth::construction_work(&g, 2, 16);
    print_header(&[
        "representation",
        "work model (Table V)",
        "measured hash ops",
        "1-thread build [s]",
        "all-thread build [s]",
        "speedup",
    ]);
    let cases = [
        ("BF (b=2)", Representation::Bloom { b: 2 }, bf_ops),
        ("k-Hash", Representation::KHash, kh_ops),
        ("1-Hash", Representation::OneHash, oh_ops),
        ("KMV", Representation::Kmv, oh_ops),
    ];
    let models = ["O(b·d_v)", "O(k·d_v)", "O(d_v)", "O(d_v)"];
    for ((label, rep, ops), model) in cases.into_iter().zip(models) {
        let cfg = PgConfig::new(rep, 0.25);
        let t1 = with_threads(1, || time_median(3, || ProbGraph::build(&g, &cfg)).seconds);
        let tp = with_threads(available_threads(), || {
            time_median(3, || ProbGraph::build(&g, &cfg)).seconds
        });
        print_row(&[
            label.into(),
            model.into(),
            ops.to_string(),
            format!("{t1:.4}"),
            format!("{tp:.4}"),
            format!("{:.2}", t1 / tp),
        ]);
    }
}
