//! Fig. 8: strong scaling (a–d) and weak scaling (e–h) of TC and the three
//! Clustering variants, for the exact baseline, Doulion, Colorful, PG-BF
//! and PG-1H. Thread counts sweep powers of two up to the machine limit;
//! weak scaling grows the Kronecker edge factor with the thread count
//! (m/n doubling twice per thread doubling, as in the paper, scaled down).

use pg_bench::harness::{print_header, print_row, time_median};
use pg_bench::workloads::env_scale;
use pg_graph::{gen, orient_by_degree, CsrGraph};
use pg_parallel::{available_threads, with_threads};
use probgraph::algorithms::clustering::{jarvis_patrick_exact, jarvis_patrick_pg, SimilarityKind};
use probgraph::algorithms::triangles;
use probgraph::baselines::{colorful, doulion};
use probgraph::{PgConfig, ProbGraph, Representation};

fn thread_steps() -> Vec<usize> {
    let max = available_threads();
    let mut v = vec![1usize];
    while *v.last().unwrap() * 2 <= max {
        v.push(v.last().unwrap() * 2);
    }
    v
}

fn tc_row(panel: &str, graph: &str, t: usize, g: &CsrGraph) {
    let dag = orient_by_degree(g);
    let cfg_bf = PgConfig::new(Representation::Bloom { b: 2 }, 0.25);
    let cfg_1h = PgConfig::new(Representation::OneHash, 0.25);
    with_threads(t, || {
        let pg_bf = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg_bf);
        let pg_1h = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg_1h);
        let ex = time_median(2, || triangles::count_exact_on_dag(&dag)).seconds;
        let dl = time_median(2, || doulion::triangle_estimate(g, 0.25, 7)).seconds;
        let cf = time_median(2, || colorful::triangle_estimate(g, 2, 7)).seconds;
        let bf = time_median(2, || triangles::count_approx_on_dag(&dag, &pg_bf)).seconds;
        let oh = time_median(2, || triangles::count_approx_on_dag(&dag, &pg_1h)).seconds;
        print_row(&[
            panel.into(),
            graph.into(),
            t.to_string(),
            format!("{ex:.4}"),
            format!("{dl:.4}"),
            format!("{cf:.4}"),
            format!("{bf:.4}"),
            format!("{oh:.4}"),
        ]);
    });
}

fn clustering_row(
    panel: &str,
    graph: &str,
    t: usize,
    g: &CsrGraph,
    kind: SimilarityKind,
    tau: f64,
) {
    let cfg_bf = PgConfig::new(Representation::Bloom { b: 2 }, 0.25);
    let cfg_1h = PgConfig::new(Representation::OneHash, 0.25);
    with_threads(t, || {
        let pg_bf = ProbGraph::build(g, &cfg_bf);
        let pg_1h = ProbGraph::build(g, &cfg_1h);
        let ex = time_median(2, || jarvis_patrick_exact(g, kind, tau)).seconds;
        let bf = time_median(2, || jarvis_patrick_pg(g, &pg_bf, kind, tau)).seconds;
        let oh = time_median(2, || jarvis_patrick_pg(g, &pg_1h, kind, tau)).seconds;
        print_row(&[
            panel.into(),
            graph.into(),
            t.to_string(),
            format!("{ex:.4}"),
            "-".into(),
            "-".into(),
            format!("{bf:.4}"),
            format!("{oh:.4}"),
        ]);
    });
}

fn main() {
    let scale = env_scale(1);
    let strong_scale = 13 - (scale.min(4) as u32 - 1); // PG_SCALE shrinks graphs
    println!("# Fig. 8 — strong & weak scaling (runtimes in seconds)");
    println!();
    print_header(&[
        "panel", "graph", "threads", "exact", "doulion", "colorful", "PG-BF", "PG-1H",
    ]);
    // Strong scaling: one fixed Kronecker graph per panel.
    let g = gen::kronecker(strong_scale, 16, 77);
    let gname = format!("kron-2^{strong_scale}-ef16");
    for &t in &thread_steps() {
        tc_row("strong-TC", &gname, t, &g);
    }
    for (panel, kind, tau) in [
        ("strong-Cluster-CN", SimilarityKind::CommonNeighbors, 2.0),
        ("strong-Cluster-Jac", SimilarityKind::Jaccard, 0.05),
        ("strong-Cluster-Ovl", SimilarityKind::Overlap, 0.10),
    ] {
        for &t in &thread_steps() {
            clustering_row(panel, &gname, t, &g, kind, tau);
        }
    }
    // Weak scaling: edge factor grows 2× per thread doubling squared
    // (m/n ≈ 4, 16, 64, …), n fixed.
    let n_scale = strong_scale.saturating_sub(2);
    for (i, &t) in thread_steps().iter().enumerate() {
        let ef = 4usize << (2 * i).min(8);
        let wg = gen::kronecker(n_scale, ef, 99);
        let wname = format!("kron-2^{n_scale}-ef{ef}");
        tc_row("weak-TC", &wname, t, &wg);
        clustering_row(
            "weak-Cluster-CN",
            &wname,
            t,
            &wg,
            SimilarityKind::CommonNeighbors,
            2.0,
        );
        clustering_row(
            "weak-Cluster-Jac",
            &wname,
            t,
            &wg,
            SimilarityKind::Jaccard,
            0.05,
        );
        clustering_row(
            "weak-Cluster-Ovl",
            &wname,
            t,
            &wg,
            SimilarityKind::Overlap,
            0.10,
        );
    }
}
