//! Tables II & III: empirical verification of the estimator properties.
//!
//! * Asymptotic unbiasedness / consistency: the mean relative error of each
//!   `|X∩Y|` estimator shrinks as the sketch grows (bias → 0).
//! * Concentration bounds: the observed deviation frequency at threshold
//!   `t` never exceeds the paper's bound (Eq. 3 for BF — polynomial;
//!   Eq. 6/7 for MinHash — exponential).

use pg_bench::harness::{print_header, print_row};
use pg_sketch::estimators;
use pg_sketch::{BloomFilter, BottomK, MinHashSignature};

fn make_sets(inter: usize, each: usize) -> (Vec<u32>, Vec<u32>) {
    let x: Vec<u32> = (0..each as u32).collect();
    let y: Vec<u32> = ((each - inter) as u32..(2 * each - inter) as u32).collect();
    (x, y)
}

fn main() {
    let (nx, ny, inter) = (600usize, 600usize, 200usize);
    let (x, y) = make_sets(inter, nx);
    let _ = ny;
    println!("# Tables II/III — estimator properties, |X|=|Y|=600, |X∩Y|=200");
    println!();
    println!("## Convergence (asymptotic unbiasedness / consistency)");
    print_header(&[
        "estimator",
        "sketch size",
        "mean estimate (50 seeds)",
        "mean |rel err|",
    ]);
    for size_exp in [10usize, 12, 14, 16] {
        let bits = 1 << size_exp;
        let mut est_sum = 0.0;
        let mut err_sum = 0.0;
        let trials = 50;
        for seed in 0..trials {
            let fx = BloomFilter::from_set(&x, bits, 2, seed);
            let fy = BloomFilter::from_set(&y, bits, 2, seed);
            let e = fx.estimate_intersection_and(&fy);
            est_sum += e;
            err_sum += (e - inter as f64).abs() / inter as f64;
        }
        print_row(&[
            "BF-AND (Eq.2)".into(),
            format!("B=2^{size_exp}"),
            format!("{:.2}", est_sum / trials as f64),
            format!("{:.4}", err_sum / trials as f64),
        ]);
    }
    for k in [32usize, 128, 512, 2048] {
        let mut est_sum = 0.0;
        let mut err_sum = 0.0;
        let trials = 50;
        for seed in 0..trials {
            let sx = MinHashSignature::from_set(&x, k, seed);
            let sy = MinHashSignature::from_set(&y, k, seed);
            let e = sx.estimate_intersection(&sy, x.len(), y.len());
            est_sum += e;
            err_sum += (e - inter as f64).abs() / inter as f64;
        }
        print_row(&[
            "MH-kH (Eq.5, MLE)".into(),
            format!("k={k}"),
            format!("{:.2}", est_sum / trials as f64),
            format!("{:.4}", err_sum / trials as f64),
        ]);
    }
    for k in [32usize, 128, 512] {
        let mut est_sum = 0.0;
        let mut err_sum = 0.0;
        let trials = 50;
        for seed in 0..trials {
            let sx = BottomK::from_set(&x, k, seed);
            let sy = BottomK::from_set(&y, k, seed);
            let e = sx.estimate_intersection(&sy);
            est_sum += e;
            err_sum += (e - inter as f64).abs() / inter as f64;
        }
        print_row(&[
            "MH-1H (§IV-D)".into(),
            format!("k={k}"),
            format!("{:.2}", est_sum / trials as f64),
            format!("{:.4}", err_sum / trials as f64),
        ]);
    }

    println!();
    println!("## Concentration bounds (violation frequency vs bound)");
    print_header(&[
        "estimator",
        "t",
        "observed P[dev ≥ t]",
        "paper bound",
        "holds",
    ]);
    let trials = 400u64;
    for t in [40.0f64, 80.0, 160.0] {
        // MinHash k-hash: exponential bound (Eq. 6).
        let k = 256;
        let mut viol = 0;
        for seed in 0..trials {
            let sx = MinHashSignature::from_set(&x, k, seed);
            let sy = MinHashSignature::from_set(&y, k, seed);
            let e = sx.estimate_intersection(&sy, x.len(), y.len());
            if (e - inter as f64).abs() >= t {
                viol += 1;
            }
        }
        let freq = viol as f64 / trials as f64;
        let bound = pg_stats::mh_concentration_bound(k, t, x.len(), y.len());
        print_row(&[
            format!("MH-kH k={k} (E)"),
            format!("{t}"),
            format!("{freq:.4}"),
            format!("{bound:.4}"),
            (freq <= bound + 1e-9).to_string(),
        ]);
        // Bloom AND: polynomial Chebyshev bound (Eq. 3).
        let bits = 1 << 14;
        let b = 2;
        let mut viol = 0;
        for seed in 0..trials {
            let fx = BloomFilter::from_set(&x, bits, b, seed);
            let fy = BloomFilter::from_set(&y, bits, b, seed);
            if (fx.estimate_intersection_and(&fy) - inter as f64).abs() >= t {
                viol += 1;
            }
        }
        let freq = viol as f64 / trials as f64;
        let bound = pg_stats::bf_concentration_bound(inter as f64, bits, b, t);
        print_row(&[
            format!("BF-AND B=2^14 b={b} (P)"),
            format!("{t}"),
            format!("{freq:.4}"),
            format!("{bound:.4}"),
            (freq <= bound + 1e-9).to_string(),
        ]);
    }
    println!();
    println!("## Sanity: Eq. (1) single-set estimator");
    let fx = BloomFilter::from_set(&x, 1 << 14, 2, 9);
    println!(
        "|X|=600, Swamidass estimate = {:.2}, Papapetrou baseline = {:.2}",
        fx.estimate_size(),
        estimators::bf_size_papapetrou(fx.count_ones(), fx.len_bits(), fx.num_hashes())
    );
}
