//! Quick dense-workload speedup check: exact vs PG-BF vs PG-1H triangle
//! counting on the full-size econ-psmigr1 stand-in (the regime where the
//! paper's speedups appear). Handy for sanity-checking a machine.

use std::time::Instant;
fn main() {
    let g = pg_graph::gen::instance("econ-psmigr1", 1).unwrap();
    println!("n={} m={} davg={:.0}", g.num_vertices(), g.num_edges(), g.avg_degree());
    let dag = pg_graph::orient_by_degree(&g);
    let t0 = Instant::now();
    let tc = probgraph::algorithms::triangles::count_exact_on_dag(&dag);
    let te = t0.elapsed().as_secs_f64();
    println!("exact tc={tc} in {te:.3}s");
    for (lbl, rep) in [("BF2", probgraph::Representation::Bloom{b:2}), ("1H", probgraph::Representation::OneHash)] {
        let pg = probgraph::ProbGraph::build_dag(&dag, g.memory_bytes(), &probgraph::PgConfig::new(rep, 0.25));
        let t0 = Instant::now();
        let est = probgraph::algorithms::triangles::count_approx_on_dag(&dag, &pg);
        let tp = t0.elapsed().as_secs_f64();
        println!("{lbl}: est={est:.0} in {tp:.3}s speedup={:.2} rel={:.3}", te/tp, est/tc as f64);
    }
}
