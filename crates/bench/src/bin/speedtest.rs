//! Per-edge kernel speed test + machine-readable `BENCH_kernels.json`.
//!
//! Times every `|N⁺_u ∩ N⁺_v|` kernel of Table IV — exact merge and
//! galloping, the fused Bloom AND/Limit/OR estimators (plus their naive
//! multi-pass counterparts, to track the fusion win), MinHash k-hash and
//! 1-hash, KMV, and HLL — in ns/edge on the dense econ-psmigr1 stand-in,
//! the regime where the paper's speedups appear. A `row_batch` section
//! compares, per representation, the scalar row path (source sketch
//! pinned, one scalar kernel call per destination — what the oracle layer
//! shipped before multi-lane) against the multi-lane row path the oracles
//! now use (2–4 destinations per fused sweep). A `dispatch` section then
//! compares the per-edge enum-match estimator path
//! (`ProbGraph::estimate_intersection` in the loop) against the hoisted
//! monomorphized oracle path (`ProbGraph::with_oracle` +
//! `estimate_row` sweeps — the loop every algorithm kernel runs now),
//! and the end-to-end triangle-count comparison reruns as a sanity check.
//! A `tiling` section times the blocked source-batch × destination-tile
//! traversal (`tiled_block_sweep`) against the flat multi-lane row sweep
//! for the three Bloom strategies on a dedicated workload whose
//! destination store is sized at ~6× the probed L2 (the out-of-cache
//! regime the blocked schedule targets — the scaled main workload is
//! L2-resident, where the planner correctly declines), single-threaded so
//! the ratio isolates the cache-blocked schedule; the Bloom `row_batch`
//! entries also carry a fixed-lane-count (2/3/4) breakdown, and a `host`
//! object records the probed cache topology plus the chosen tile budget.
//! A `streaming` section times the `MutableOracle` write path: ns per
//! inserted oriented edge (batched and single-edge `apply_arcs`) against
//! the full rebuild each update replaces, per representation, with the
//! update-vs-rebuild ratio and the batch-size crossover point. A
//! `streaming_removal` section times the deletion path of the
//! removal-capable counting-Bloom representation (batched and
//! single-edge `remove_arcs`) against its own insert path — counter
//! decrement mirrors counter increment, so removal ns/edge is gated at
//! insert parity in CI — and reports the store's sticky-saturated
//! counter count (4-bit counters frozen at 15, which removals can no
//! longer clear). A `serving` section times the sharded concurrent
//! serving layer (`ShardedProbGraph`): a fixed mixed read/write op
//! stream run serially on one thread vs. concurrently (writer thread
//! staging/publishing epochs, query thread sweeping pinned snapshots)
//! across 1/2/4 shard lanes at 0/10/50 % write mixes. The
//! serial-vs-serving ratios are gated in CI conditionally on the
//! recorded thread count — a single-CPU runner time-slices the threads
//! and can only lose. A `stratified` section compares degree-stratified
//! against uniform sketch plans at the same storage budget on a fixed
//! skewed Chung-Lu workload: TC relative error, sweep runtime, and
//! snapshot bytes per plan, gated in CI for bf2 (stratified error must
//! beat uniform; runtime within the 0.90 noise floor).
//!
//! Honors `PG_SCALE` (dataset down-scale, default 1 = full size) and
//! `PG_REPS` (timing repetitions, default 5). Writes `BENCH_kernels.json`
//! to the current directory so successive PRs can track the perf
//! trajectory.

use pg_bench::harness::time_median;
use pg_bench::workloads::env_scale;
use pg_parallel::{cache_topology, tile_bytes, with_threads};
use pg_sketch::bitvec::{and_count_words, and_count_words_multi, count_ones_words};
use pg_sketch::{
    estimators, BloomCollection, BottomKCollection, HyperLogLogCollection, KmvCollection,
    MinHashCollection,
};
use probgraph::intersect::{gallop_count, merge_count};
use probgraph::oracle::{
    BloomAnd, BloomLimit, BloomOr, BloomOracle, BloomStrategy, HllOracle, IntersectionOracle,
    KHashOracle, KmvOracle, OracleVisitor,
};
use probgraph::{BfEstimator, PgConfig, ProbGraph, Representation};
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

/// Naive multi-pass AND estimator: materialize the AND-ed words (heap
/// allocation), then popcount them in a second pass — the obvious
/// implementation the fused kernel replaces.
fn naive_and_ones(a: &[u64], b: &[u64]) -> usize {
    let anded: Vec<u64> = a.iter().zip(b).map(|(x, y)| x & y).collect();
    count_ones_words(&anded)
}

/// Naive OR-estimator statistic: a separate OR+popcount traversal (the
/// fused path derives it from the AND pass and cached popcounts).
fn naive_or_ones(a: &[u64], b: &[u64]) -> usize {
    let ored: Vec<u64> = a.iter().zip(b).map(|(x, y)| x | y).collect();
    count_ones_words(&ored)
}

struct Entry {
    name: &'static str,
    ns_per_edge: f64,
}

fn main() {
    let scale = env_scale(1);
    let reps: usize = std::env::var("PG_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(5);
    let g = pg_graph::gen::instance("econ-psmigr1", scale).unwrap();
    println!(
        "workload econ-psmigr1/{scale}: n={} m={} davg={:.0}",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );
    let dag = pg_graph::orient_by_degree(&g);
    let n = dag.num_vertices();
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|v| dag.neighbors_plus(v).iter().map(move |&u| (v, u)))
        .collect();
    let m = edges.len().max(1);

    // Sketches over N⁺ under the paper's default 25 % budget.
    let budget = pg_sketch::BudgetPlan::new(g.memory_bytes(), n, 0.25);
    let pg_sketch::SketchParams::Bloom { bits_per_set, .. } = budget.bloom(2) else {
        unreachable!()
    };
    let pg_sketch::SketchParams::KHash { k } = budget.khash() else {
        unreachable!()
    };
    let pg_sketch::SketchParams::Hll { precision } = budget.hll() else {
        unreachable!()
    };
    let bloom = BloomCollection::build(n, bits_per_set, 2, 7, |v| dag.neighbors_plus(v as u32));
    let khash = MinHashCollection::build(n, k, 7, |v| dag.neighbors_plus(v as u32));
    let onehash = BottomKCollection::build(n, k, 7, |v| dag.neighbors_plus(v as u32));
    let kmv = KmvCollection::build(n, k, 7, |v| dag.neighbors_plus(v as u32));
    let hll = HyperLogLogCollection::build(n, precision, 7, |v| dag.neighbors_plus(v as u32));
    println!(
        "sketches: BF B={bits_per_set} b=2 | MH/KMV k={k} | HLL p={precision} | {m} oriented edges"
    );

    let mut entries: Vec<Entry> = Vec::new();
    let mut record = |name: &'static str, seconds: f64| {
        let ns = seconds * 1e9 / m as f64;
        println!("{name:>22}: {ns:8.2} ns/edge");
        entries.push(Entry {
            name,
            ns_per_edge: ns,
        });
        ns
    };

    // --- exact CSR kernels ------------------------------------------------
    let t = time_median(reps, || {
        let mut acc = 0usize;
        for &(v, u) in &edges {
            acc += merge_count(dag.neighbors_plus(v), dag.neighbors_plus(u));
        }
        black_box(acc)
    });
    record("exact_merge", t.seconds);

    let t = time_median(reps, || {
        let mut acc = 0usize;
        for &(v, u) in &edges {
            let (a, b) = (dag.neighbors_plus(v), dag.neighbors_plus(u));
            let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            acc += gallop_count(s, l);
        }
        black_box(acc)
    });
    record("exact_gallop", t.seconds);

    // --- Bloom estimators: fused vs naive ---------------------------------
    let t = time_median(reps, || {
        let mut acc = 0.0f64;
        for &(v, u) in &edges {
            acc += bloom.estimate_and(v as usize, u as usize);
        }
        black_box(acc)
    });
    let bf_and_fused = record("bf_and_fused", t.seconds);

    let t = time_median(reps, || {
        let mut acc = 0.0f64;
        for &(v, u) in &edges {
            let ones = naive_and_ones(bloom.words(v as usize), bloom.words(u as usize));
            acc += estimators::bf_intersect_and(ones, bloom.bits_per_set(), bloom.num_hashes());
        }
        black_box(acc)
    });
    let bf_and_naive = record("bf_and_naive", t.seconds);

    let t = time_median(reps, || {
        let mut acc = 0.0f64;
        for &(v, u) in &edges {
            acc += bloom.estimate_limit(v as usize, u as usize);
        }
        black_box(acc)
    });
    record("bf_limit_fused", t.seconds);

    let t = time_median(reps, || {
        let mut acc = 0.0f64;
        for &(v, u) in &edges {
            let (i, j) = (v as usize, u as usize);
            acc += bloom.estimate_or(i, j, dag.out_degree(v), dag.out_degree(u));
        }
        black_box(acc)
    });
    let bf_or_fused = record("bf_or_fused", t.seconds);

    let t = time_median(reps, || {
        let mut acc = 0.0f64;
        for &(v, u) in &edges {
            let (i, j) = (v as usize, u as usize);
            let or_ones = naive_or_ones(bloom.words(i), bloom.words(j));
            acc += estimators::bf_intersect_or(
                or_ones,
                bloom.bits_per_set(),
                bloom.num_hashes(),
                dag.out_degree(v),
                dag.out_degree(u),
            );
        }
        black_box(acc)
    });
    let bf_or_naive = record("bf_or_naive", t.seconds);

    // All three estimators at once: fused single pass vs three naive passes.
    let t = time_median(reps, || {
        let mut acc = 0.0f64;
        for &(v, u) in &edges {
            let (i, j) = (v as usize, u as usize);
            let all = bloom.estimate_all(i, j, dag.out_degree(v), dag.out_degree(u));
            acc += all.and_est + all.limit_est + all.or_est;
        }
        black_box(acc)
    });
    let bf_all_fused = record("bf_all3_fused", t.seconds);

    let t = time_median(reps, || {
        let mut acc = 0.0f64;
        for &(v, u) in &edges {
            let (i, j) = (v as usize, u as usize);
            let (wa, wb) = (bloom.words(i), bloom.words(j));
            let and_ones = naive_and_ones(wa, wb);
            let or_ones = naive_or_ones(wa, wb);
            acc += estimators::bf_intersect_and(and_ones, bloom.bits_per_set(), bloom.num_hashes())
                + estimators::bf_intersect_limit(and_ones, bloom.num_hashes())
                + estimators::bf_intersect_or(
                    or_ones,
                    bloom.bits_per_set(),
                    bloom.num_hashes(),
                    dag.out_degree(v),
                    dag.out_degree(u),
                );
        }
        black_box(acc)
    });
    let bf_all_naive = record("bf_all3_naive", t.seconds);

    // --- MinHash / KMV ----------------------------------------------------
    let t = time_median(reps, || {
        let mut acc = 0usize;
        for &(v, u) in &edges {
            acc += khash.matches(v as usize, u as usize);
        }
        black_box(acc)
    });
    record("mh_khash", t.seconds);

    let t = time_median(reps, || {
        let mut acc = 0usize;
        for &(v, u) in &edges {
            acc += onehash.matches(v as usize, u as usize);
        }
        black_box(acc)
    });
    record("mh_1hash", t.seconds);

    let t = time_median(reps, || {
        let mut acc = 0.0f64;
        for &(v, u) in &edges {
            acc += kmv.estimate_intersection(v as usize, u as usize);
        }
        black_box(acc)
    });
    record("kmv", t.seconds);

    let t = time_median(reps, || {
        let mut acc = 0.0f64;
        for &(v, u) in &edges {
            let (i, j) = (v as usize, u as usize);
            acc += hll.estimate_intersection(i, j, dag.out_degree(v), dag.out_degree(u));
        }
        black_box(acc)
    });
    record("hll", t.seconds);

    let and_speedup = bf_and_naive / bf_and_fused;
    let or_speedup = bf_or_naive / bf_or_fused;
    let all_speedup = bf_all_naive / bf_all_fused;
    println!(
        "fused-vs-naive speedup: AND {and_speedup:.2}x | OR {or_speedup:.2}x | all3 {all_speedup:.2}x"
    );

    // --- row batching: scalar row path vs multi-lane ----------------------
    // Both paths pin the source sketch once per vertex and sweep its
    // oriented row; the scalar path calls one kernel per destination (the
    // pre-multi-lane oracle behavior), the multi path is the oracles'
    // `estimate_row` (2-lane fused AND sweeps for Bloom, 4-lane signature
    // matching for k-hash, lockstep-interleaved merge walks for KMV,
    // 4-lane register-max passes for HLL).
    let sizes: Vec<u32> = (0..n as u32).map(|v| dag.out_degree(v) as u32).collect();
    fn row_sweep_multi<O: IntersectionOracle>(dag: &pg_graph::OrientedDag, o: &O) -> f64 {
        let mut acc = 0.0f64;
        let mut row = Vec::new();
        for v in 0..dag.num_vertices() as u32 {
            let np = dag.neighbors_plus(v);
            if np.is_empty() {
                continue;
            }
            o.estimate_row(v, np, &mut row);
            acc += row.iter().sum::<f64>();
        }
        acc
    }
    struct RowBatchEntry {
        name: &'static str,
        scalar_row_ns: f64,
        multi_ns: f64,
        /// Fixed-lane-count sweeps (exactly 2 / 3 / 4 destinations per
        /// fused pass, scalar tail), Bloom strategies only — shows where
        /// the lane-batching win saturates against the bandwidth wall.
        lane_ns: Option<[f64; 3]>,
    }
    let mut row_batch: Vec<RowBatchEntry> = Vec::new();
    {
        let mut record_rb =
            |name: &'static str, scalar: f64, multi: f64, lanes: Option<[f64; 3]>| {
                let (s, mu) = (scalar * 1e9 / m as f64, multi * 1e9 / m as f64);
                let lane_ns = lanes.map(|l| l.map(|t| t * 1e9 / m as f64));
                println!(
                    "{:>22}: scalar-row {s:8.2} ns/edge | multi-lane {mu:8.2} ns/edge | {:.2}x",
                    format!("row_{name}"),
                    s / mu
                );
                if let Some(l) = lane_ns {
                    println!(
                        "{:>22}: 2-lane {:8.2} | 3-lane {:8.2} | 4-lane {:8.2} ns/edge",
                        "", l[0], l[1], l[2]
                    );
                }
                row_batch.push(RowBatchEntry {
                    name,
                    scalar_row_ns: s,
                    multi_ns: mu,
                    lane_ns,
                });
            };

        /// Fixed-lane Bloom sweep: exactly `L` destinations per fused
        /// multi-lane pass (scalar remainder, no prefetch) — isolates what
        /// each extra accumulator lane buys over the scalar row path.
        fn bloom_sweep_lanes<S: BloomStrategy, const L: usize>(
            dag: &pg_graph::OrientedDag,
            bloom: &BloomCollection,
            sizes: &[u32],
        ) -> f64 {
            let mut acc = 0.0f64;
            let mut rowbuf: Vec<f64> = Vec::new();
            for v in 0..dag.num_vertices() as u32 {
                let np = dag.neighbors_plus(v);
                if np.is_empty() {
                    continue;
                }
                let i = v as usize;
                let row = bloom.words(i);
                let row_ones = bloom.count_ones(i);
                let row_size = sizes[i];
                rowbuf.clear();
                let mut t = 0;
                while t + L <= np.len() {
                    let ones = and_count_words_multi(
                        row,
                        std::array::from_fn::<_, L, _>(|l| bloom.words(np[t + l] as usize)),
                    );
                    for (l, &o) in ones.iter().enumerate() {
                        let j = np[t + l] as usize;
                        rowbuf.push(S::estimate_from_and_ones(
                            bloom, o, row_ones, row_size, j, sizes[j],
                        ));
                    }
                    t += L;
                }
                for &u in &np[t..] {
                    let j = u as usize;
                    let ones = and_count_words(row, bloom.words(j));
                    rowbuf.push(S::estimate_from_and_ones(
                        bloom, ones, row_ones, row_size, j, sizes[j],
                    ));
                }
                acc += rowbuf.iter().sum::<f64>();
            }
            acc
        }
        fn time_lanes<S: BloomStrategy>(
            reps: usize,
            dag: &pg_graph::OrientedDag,
            bloom: &BloomCollection,
            sizes: &[u32],
        ) -> [f64; 3] {
            [
                time_median(reps, || {
                    black_box(bloom_sweep_lanes::<S, 2>(dag, bloom, sizes))
                })
                .seconds,
                time_median(reps, || {
                    black_box(bloom_sweep_lanes::<S, 3>(dag, bloom, sizes))
                })
                .seconds,
                time_median(reps, || {
                    black_box(bloom_sweep_lanes::<S, 4>(dag, bloom, sizes))
                })
                .seconds,
            ]
        }

        // Bloom, all three estimator strategies. The scalar row path is
        // the faithful pre-multi-lane oracle behavior: source window +
        // popcount + size pinned, one scalar fused AND pass per
        // destination finished by the strategy's own estimator tail,
        // results through the same row buffer — so the ratio isolates
        // what lane batching (+ prefetch) buys.
        fn scalar_bloom_sweep<S: BloomStrategy>(
            dag: &pg_graph::OrientedDag,
            bloom: &BloomCollection,
            sizes: &[u32],
        ) -> f64 {
            let mut acc = 0.0f64;
            let mut rowbuf: Vec<f64> = Vec::new();
            for v in 0..dag.num_vertices() as u32 {
                let np = dag.neighbors_plus(v);
                if np.is_empty() {
                    continue;
                }
                let i = v as usize;
                let row = bloom.words(i);
                let row_ones = bloom.count_ones(i);
                let row_size = sizes[i];
                rowbuf.clear();
                rowbuf.extend(np.iter().map(|&u| {
                    let j = u as usize;
                    let ones = and_count_words(row, bloom.words(j));
                    S::estimate_from_and_ones(bloom, ones, row_ones, row_size, j, sizes[j])
                }));
                acc += rowbuf.iter().sum::<f64>();
            }
            acc
        }
        let t_s = time_median(reps, || {
            black_box(scalar_bloom_sweep::<BloomAnd>(&dag, &bloom, &sizes))
        });
        let t_m = time_median(reps, || {
            black_box(row_sweep_multi(
                &dag,
                &BloomOracle::<BloomAnd>::new(&bloom, &sizes),
            ))
        });
        record_rb(
            "bf_and",
            t_s.seconds,
            t_m.seconds,
            Some(time_lanes::<BloomAnd>(reps, &dag, &bloom, &sizes)),
        );

        let t_s = time_median(reps, || {
            black_box(scalar_bloom_sweep::<BloomLimit>(&dag, &bloom, &sizes))
        });
        let t_m = time_median(reps, || {
            black_box(row_sweep_multi(
                &dag,
                &BloomOracle::<BloomLimit>::new(&bloom, &sizes),
            ))
        });
        record_rb(
            "bf_limit",
            t_s.seconds,
            t_m.seconds,
            Some(time_lanes::<BloomLimit>(reps, &dag, &bloom, &sizes)),
        );

        let t_s = time_median(reps, || {
            black_box(scalar_bloom_sweep::<BloomOr>(&dag, &bloom, &sizes))
        });
        let t_m = time_median(reps, || {
            black_box(row_sweep_multi(
                &dag,
                &BloomOracle::<BloomOr>::new(&bloom, &sizes),
            ))
        });
        record_rb(
            "bf_or",
            t_s.seconds,
            t_m.seconds,
            Some(time_lanes::<BloomOr>(reps, &dag, &bloom, &sizes)),
        );

        // k-hash MinHash: pinned signature, scalar matching vs 4-lane.
        let t_s = time_median(reps, || {
            let mut acc = 0.0f64;
            let mut rowbuf: Vec<f64> = Vec::new();
            let k = khash.k();
            for v in 0..n as u32 {
                let np = dag.neighbors_plus(v);
                if np.is_empty() {
                    continue;
                }
                let i = v as usize;
                let row = khash.signature(i);
                let ni = sizes[i] as usize;
                rowbuf.clear();
                rowbuf.extend(np.iter().map(|&u| {
                    let j = u as usize;
                    estimators::jaccard_to_intersection(
                        estimators::mh_jaccard(khash.matches_with_row(row, j), k),
                        ni,
                        sizes[j] as usize,
                    )
                }));
                acc += rowbuf.iter().sum::<f64>();
            }
            black_box(acc)
        });
        let t_m = time_median(reps, || {
            black_box(row_sweep_multi(&dag, &KHashOracle::new(&khash, &sizes)))
        });
        record_rb("khash", t_s.seconds, t_m.seconds, None);

        // KMV: pinned source sketch, scalar merge walks vs interleaved.
        let t_s = time_median(reps, || {
            let mut acc = 0.0f64;
            let mut rowbuf: Vec<f64> = Vec::new();
            for v in 0..n as u32 {
                let np = dag.neighbors_plus(v);
                if np.is_empty() {
                    continue;
                }
                let s = kmv.sketch(v as usize);
                rowbuf.clear();
                rowbuf.extend(
                    np.iter()
                        .map(|&u| s.estimate_intersection(kmv.sketch(u as usize))),
                );
                acc += rowbuf.iter().sum::<f64>();
            }
            black_box(acc)
        });
        let t_m = time_median(reps, || {
            black_box(row_sweep_multi(&dag, &KmvOracle::new(&kmv, &sizes)))
        });
        record_rb("kmv", t_s.seconds, t_m.seconds, None);

        // HLL: pinned register window, scalar union passes vs 4-lane.
        let t_s = time_median(reps, || {
            let mut acc = 0.0f64;
            let mut rowbuf: Vec<f64> = Vec::new();
            for v in 0..n as u32 {
                let np = dag.neighbors_plus(v);
                if np.is_empty() {
                    continue;
                }
                let i = v as usize;
                let row = hll.registers(i);
                let nx = sizes[i] as usize;
                rowbuf.clear();
                rowbuf.extend(np.iter().map(|&u| {
                    let j = u as usize;
                    HyperLogLogCollection::intersection_from_union(
                        nx,
                        sizes[j] as usize,
                        hll.union_estimate_with_row(row, j),
                    )
                }));
                acc += rowbuf.iter().sum::<f64>();
            }
            black_box(acc)
        });
        let t_m = time_median(reps, || {
            black_box(row_sweep_multi(&dag, &HllOracle::new(&hll, &sizes)))
        });
        record_rb("hll", t_s.seconds, t_m.seconds, None);
    }

    // --- hoisted dispatch vs per-edge enum match --------------------------
    // Per-edge path: `ProbGraph::estimate_intersection` inside the loop
    // re-resolves the representation (store enum + BfEstimator) on every
    // call. Hoisted path: `ProbGraph::with_oracle` resolves once and
    // sweeps each vertex's oriented row through the monomorphized
    // `estimate_row` — exactly the loop every algorithm kernel runs now.
    struct RowSweep<'a>(&'a pg_graph::OrientedDag);
    impl OracleVisitor for RowSweep<'_> {
        type Output = f64;
        fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
            row_sweep_multi(self.0, o)
        }
    }
    struct DispatchEntry {
        name: &'static str,
        per_edge_ns: f64,
        hoisted_ns: f64,
    }
    let mut dispatch: Vec<DispatchEntry> = Vec::new();
    for (name, cfg) in [
        ("bf1", PgConfig::new(Representation::Bloom { b: 1 }, 0.25)),
        ("bf2", PgConfig::new(Representation::Bloom { b: 2 }, 0.25)),
        (
            "bf2_or",
            PgConfig::new(Representation::Bloom { b: 2 }, 0.25).with_bf_estimator(BfEstimator::Or),
        ),
        ("khash", PgConfig::new(Representation::KHash, 0.25)),
        ("onehash", PgConfig::new(Representation::OneHash, 0.25)),
        ("kmv", PgConfig::new(Representation::Kmv, 0.25)),
        ("hll", PgConfig::new(Representation::Hll, 0.25)),
    ] {
        let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
        let t_per_edge = time_median(reps, || {
            let mut acc = 0.0f64;
            for &(v, u) in &edges {
                acc += pg.estimate_intersection(v, u);
            }
            black_box(acc)
        });
        let t_hoisted = time_median(reps, || black_box(pg.with_oracle(RowSweep(&dag))));
        let (pe, ho) = (
            t_per_edge.seconds * 1e9 / m as f64,
            t_hoisted.seconds * 1e9 / m as f64,
        );
        println!(
            "{:>22}: per-edge {pe:8.2} ns/edge | hoisted {ho:8.2} ns/edge | {:.2}x",
            format!("dispatch_{name}"),
            pe / ho
        );
        dispatch.push(DispatchEntry {
            name,
            per_edge_ns: pe,
            hoisted_ns: ho,
        });
    }

    // --- tiling: blocked destination-tile sweep vs multi-lane row sweep ---
    // Tiling pays when the destination store outgrows the fast cache. The
    // scaled econ-psmigr1 store above is L2-resident — there the planner
    // correctly declines and the flat sweep measurably wins — so this
    // section builds its own sweep workload sized off the probed topology:
    // a destination store of ~6× L2 under the same sketch parameters, the
    // out-of-cache regime the blocked schedule targets. The flat multi-lane
    // sweep then takes a last-level-cache round trip per destination
    // (software prefetch hides part of it); the blocked traversal
    // (`probgraph::tiled_block_sweep`, the schedule every algorithm kernel
    // routes through when `plan_for` fires) re-reads one L2-resident
    // destination tile across a batch of pinned source rows. Both sides
    // run the same reduction single-threaded, so the ratio isolates the
    // blocked schedule — not parallel scaling, not the kernel.
    struct TilingEntry {
        name: &'static str,
        multi_ns: f64,
        tiled_ns: f64,
    }
    let window_bytes = bloom.words_per_set() * 8;
    let topo = cache_topology();
    let n_t = (6 * topo.l2_bytes / window_bytes.max(1)).clamp(4096, 1 << 17);
    let g_t = pg_graph::gen::erdos_renyi_gnm(n_t, n_t * 128, 0x7117);
    let dag_t = pg_graph::orient_by_degree(&g_t);
    let m_t: usize = (0..n_t as u32)
        .map(|v| dag_t.neighbors_plus(v).len())
        .sum::<usize>()
        .max(1);
    let sizes_t: Vec<u32> = (0..n_t as u32)
        .map(|v| dag_t.out_degree(v) as u32)
        .collect();
    let bloom_t =
        BloomCollection::build(n_t, bits_per_set, 2, 7, |v| dag_t.neighbors_plus(v as u32));
    let tile_plan = probgraph::plan_tiles(n_t, window_bytes).unwrap_or_else(|| {
        // Only reachable under a degenerate PG_TILE_BYTES override; keep
        // the section populated with the shape the default budget picks.
        let tile_ids = (tile_bytes() / window_bytes.max(1)).max(1).min(n_t);
        probgraph::TilePlan {
            tile_ids,
            batch: tile_ids.clamp(64, 8192),
        }
    });
    println!(
        "tiling workload: n={n_t} m={m_t} store={:.1} MiB (~{:.1}x L2) | plan: {} sets/tile ({} B windows) x {} source rows/batch",
        (n_t * window_bytes) as f64 / (1 << 20) as f64,
        (n_t * window_bytes) as f64 / topo.l2_bytes.max(1) as f64,
        tile_plan.tile_ids,
        window_bytes,
        tile_plan.batch
    );
    let mut tiling: Vec<TilingEntry> = Vec::new();
    {
        fn tiled_sweep<O: IntersectionOracle>(
            dag: &pg_graph::OrientedDag,
            o: &O,
            plan: &probgraph::TilePlan,
        ) -> f64 {
            probgraph::tiled_block_sweep(
                dag.num_vertices(),
                dag.num_vertices(),
                o,
                plan,
                probgraph::BlockKind::Estimate,
                |u| dag.neighbors_plus(u),
                || 0.0f64,
                |acc, _u, _lo, _dests, vals: &[f64]| acc + vals.iter().sum::<f64>(),
                |a, b| a + b,
            )
        }
        fn measure_tiled<S: BloomStrategy>(
            reps: usize,
            dag: &pg_graph::OrientedDag,
            bloom: &BloomCollection,
            sizes: &[u32],
            plan: &probgraph::TilePlan,
        ) -> (f64, f64) {
            let o = BloomOracle::<S>::new(bloom, sizes);
            // Per-destination values are bit-identical; only the f64 sum
            // reassociates. Check agreement once before timing.
            let a = row_sweep_multi(dag, &o);
            let b = tiled_sweep(dag, &o, plan);
            assert!(
                (a - b).abs() <= a.abs().max(1.0) * 1e-9,
                "tiled sweep diverged: {a} vs {b}"
            );
            with_threads(1, || {
                (
                    time_median(reps, || black_box(row_sweep_multi(dag, &o))).seconds,
                    time_median(reps, || black_box(tiled_sweep(dag, &o, plan))).seconds,
                )
            })
        }
        let mut record_tl = |name: &'static str, (t_multi, t_tiled): (f64, f64)| {
            let (mu, ti) = (t_multi * 1e9 / m_t as f64, t_tiled * 1e9 / m_t as f64);
            println!(
                "{:>22}: multi-lane {mu:8.2} ns/edge | tiled {ti:8.2} ns/edge | {:.2}x",
                format!("tiling_{name}"),
                mu / ti
            );
            tiling.push(TilingEntry {
                name,
                multi_ns: mu,
                tiled_ns: ti,
            });
        };
        record_tl(
            "bf_and",
            measure_tiled::<BloomAnd>(reps, &dag_t, &bloom_t, &sizes_t, &tile_plan),
        );
        record_tl(
            "bf_limit",
            measure_tiled::<BloomLimit>(reps, &dag_t, &bloom_t, &sizes_t, &tile_plan),
        );
        record_tl(
            "bf_or",
            measure_tiled::<BloomOr>(reps, &dag_t, &bloom_t, &sizes_t, &tile_plan),
        );
    }

    // --- streaming: incremental updates vs full rebuild --------------------
    // Per representation: the cost of absorbing new oriented edges in
    // place (`ProbGraph::apply_arcs` on a streamed base — batched and as
    // single-edge batches) against the cost of the full `build_dag`
    // rebuild those updates replace. `update_vs_rebuild` is
    // rebuild-time / single-edge-update-time (an incremental update must
    // beat rebuilding, by orders of magnitude); `crossover_edges` is how
    // many single-edge updates one rebuild buys — the batch size beyond
    // which rebuilding from scratch becomes the cheaper response.
    struct StreamingEntry {
        name: &'static str,
        ns_per_insert: f64,
        single_insert_ns: f64,
        rebuild_ns: f64,
        update_vs_rebuild: f64,
        crossover_edges: f64,
    }
    // Shared by the streaming and streaming_removal sections: the same
    // held-out tail is timed through insert and removal, so the
    // remove-vs-insert gate compares identical workloads.
    let median = |mut ts: Vec<f64>| -> f64 {
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts[ts.len() / 2]
    };
    // Hold out ~1 % of the oriented edges as the live stream.
    let tail_len = (m / 100).clamp(1, 4096.min(m));
    let (hist, tail) = edges.split_at(edges.len() - tail_len);
    let mut streaming: Vec<StreamingEntry> = Vec::new();
    {
        for (name, cfg) in [
            ("bf2", PgConfig::new(Representation::Bloom { b: 2 }, 0.25)),
            (
                "cbloom",
                PgConfig::new(Representation::CountingBloom { b: 2 }, 0.25),
            ),
            ("khash", PgConfig::new(Representation::KHash, 0.25)),
            ("onehash", PgConfig::new(Representation::OneHash, 0.25)),
            ("kmv", PgConfig::new(Representation::Kmv, 0.25)),
            ("hll", PgConfig::new(Representation::Hll, 0.25)),
        ] {
            let t_rebuild = time_median(reps, || {
                black_box(ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg))
            })
            .seconds;
            // The incremental base: streamed from the historical arcs, so
            // the mutable layouts are already in place (the one-time
            // bottom-k stride conversion happens here, not in the timed
            // region — exactly how a live deployment would run).
            let base = {
                let mut p = ProbGraph::stream_from(n, g.memory_bytes(), &cfg, &[]);
                p.apply_arcs(hist);
                p
            };
            let t_batch = median(
                (0..reps)
                    .map(|_| {
                        let mut p = base.clone();
                        let t0 = Instant::now();
                        p.apply_arcs(tail);
                        let dt = t0.elapsed().as_secs_f64();
                        black_box(&p);
                        dt
                    })
                    .collect(),
            );
            let t_single = median(
                (0..reps)
                    .map(|_| {
                        let mut p = base.clone();
                        let t0 = Instant::now();
                        for arc in tail {
                            p.apply_arcs(std::slice::from_ref(arc));
                        }
                        let dt = t0.elapsed().as_secs_f64();
                        black_box(&p);
                        dt
                    })
                    .collect(),
            );
            let ns_per_insert = t_batch * 1e9 / tail_len as f64;
            let single_insert_ns = t_single * 1e9 / tail_len as f64;
            let rebuild_ns = t_rebuild * 1e9;
            let update_vs_rebuild = rebuild_ns / single_insert_ns;
            // Batched updates are the realistic steady state; one rebuild
            // buys this many of them.
            let crossover_edges = rebuild_ns / ns_per_insert;
            println!(
                "{:>22}: batched {ns_per_insert:8.1} ns/edge | single {single_insert_ns:8.1} ns/edge | \
                 rebuild {:8.1} µs | update-vs-rebuild {update_vs_rebuild:.0}x",
                format!("streaming_{name}"),
                rebuild_ns / 1e3
            );
            streaming.push(StreamingEntry {
                name,
                ns_per_insert,
                single_insert_ns,
                rebuild_ns,
                update_vs_rebuild,
                crossover_edges,
            });
        }
    }

    // --- streaming removals: the deletion path vs the insert path ---------
    // Counting Bloom is the representation with a real deletion path;
    // removing an oriented edge decrements the same `b` bucket counters
    // its insertion incremented (plus the derived-bit maintenance), so
    // removal ns/edge should sit at insert parity — `remove_vs_insert`
    // (insert-time / removal-time, batched) is gated ≥ 1.0 in CI with the
    // usual 10 % runner-noise floor.
    struct RemovalEntry {
        name: &'static str,
        insert_ns: f64,
        remove_ns: f64,
        single_remove_ns: f64,
        remove_vs_insert: f64,
        saturated_counters: usize,
    }
    let mut removal: Vec<RemovalEntry> = Vec::new();
    {
        let cfg = PgConfig::new(Representation::CountingBloom { b: 2 }, 0.25);
        // Insert path: historical arcs streamed, the live tail timed in.
        let base_hist = {
            let mut p = ProbGraph::stream_from(n, g.memory_bytes(), &cfg, &[]);
            p.apply_arcs(hist);
            p
        };
        let t_insert = median(
            (0..reps)
                .map(|_| {
                    let mut p = base_hist.clone();
                    let t0 = Instant::now();
                    p.apply_arcs(tail);
                    let dt = t0.elapsed().as_secs_f64();
                    black_box(&p);
                    dt
                })
                .collect(),
        );
        // Removal path: the full arc set streamed, the same tail timed out.
        let base_full = {
            let mut p = base_hist.clone();
            p.apply_arcs(tail);
            p
        };
        assert!(base_full.remove_supported());
        let t_remove = median(
            (0..reps)
                .map(|_| {
                    let mut p = base_full.clone();
                    let t0 = Instant::now();
                    p.remove_arcs(tail);
                    let dt = t0.elapsed().as_secs_f64();
                    black_box(&p);
                    dt
                })
                .collect(),
        );
        let t_single = median(
            (0..reps)
                .map(|_| {
                    let mut p = base_full.clone();
                    let t0 = Instant::now();
                    for arc in tail {
                        p.remove_arcs(std::slice::from_ref(arc));
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    black_box(&p);
                    dt
                })
                .collect(),
        );
        let insert_ns = t_insert * 1e9 / tail_len as f64;
        let remove_ns = t_remove * 1e9 / tail_len as f64;
        let single_remove_ns = t_single * 1e9 / tail_len as f64;
        let remove_vs_insert = insert_ns / remove_ns;
        // Sticky-saturation exposure: 4-bit counters that hit 15 freeze
        // (removals can no longer clear their bits), so long-window
        // deployments should watch this stat — see the README caveat.
        let saturated_counters = match base_full.store() {
            probgraph::SketchStore::CountingBloom(c) => c.saturated_counters(),
            _ => unreachable!("removal bench runs on the counting-Bloom store"),
        };
        println!(
            "{:>22}: insert {insert_ns:8.1} ns/edge | remove {remove_ns:8.1} ns/edge | \
             single remove {single_remove_ns:8.1} ns/edge | remove-vs-insert {remove_vs_insert:.2}x | \
             saturated counters {saturated_counters}",
            "removal_cbloom"
        );
        removal.push(RemovalEntry {
            name: "cbloom",
            insert_ns,
            remove_ns,
            single_remove_ns,
            remove_vs_insert,
            saturated_counters,
        });
    }

    // --- snapshot: durable save/load vs rebuild ----------------------------
    // Per representation: atomic `save_snapshot` and validating
    // `load_snapshot` throughput (GB/s over the on-disk size), and the
    // load-vs-rebuild ratio. Loading re-verifies every checksum and
    // derived invariant, yet must still beat rebuilding the sketches from
    // the graph — `load_vs_build` (build-time / load-time) is gated in CI
    // at >= 0.90, the usual noise floor.
    struct SnapshotEntry {
        name: &'static str,
        bytes: u64,
        save_gbps: f64,
        load_gbps: f64,
        load_vs_build: f64,
    }
    let mut snapshot: Vec<SnapshotEntry> = Vec::new();
    {
        let dir = std::env::temp_dir().join(format!("pg_speedtest_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create snapshot bench dir");
        for (name, cfg) in [
            ("bf2", PgConfig::new(Representation::Bloom { b: 2 }, 0.25)),
            (
                "cbloom",
                PgConfig::new(Representation::CountingBloom { b: 2 }, 0.25),
            ),
            ("khash", PgConfig::new(Representation::KHash, 0.25)),
            ("onehash", PgConfig::new(Representation::OneHash, 0.25)),
            ("kmv", PgConfig::new(Representation::Kmv, 0.25)),
            ("hll", PgConfig::new(Representation::Hll, 0.25)),
        ] {
            let t_build = time_median(reps, || {
                black_box(ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg))
            })
            .seconds;
            let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
            let path = dir.join(format!("{name}.pgsnap"));
            let t_save = median(
                (0..reps)
                    .map(|_| {
                        let t0 = Instant::now();
                        pg.save_snapshot(&path).expect("save snapshot");
                        t0.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            let bytes = std::fs::metadata(&path).expect("stat snapshot").len();
            let t_load = median(
                (0..reps)
                    .map(|_| {
                        let t0 = Instant::now();
                        let p = ProbGraph::load_snapshot(&path).expect("load snapshot");
                        let dt = t0.elapsed().as_secs_f64();
                        black_box(&p);
                        dt
                    })
                    .collect(),
            );
            let gb = bytes as f64 / 1e9;
            let save_gbps = gb / t_save;
            let load_gbps = gb / t_load;
            let load_vs_build = t_build / t_load;
            println!(
                "{:>22}: {:8.1} KiB | save {save_gbps:6.2} GB/s | load {load_gbps:6.2} GB/s | \
                 load-vs-build {load_vs_build:.1}x",
                format!("snapshot_{name}"),
                bytes as f64 / 1024.0
            );
            snapshot.push(SnapshotEntry {
                name,
                bytes,
                save_gbps,
                load_gbps,
                load_vs_build,
            });
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- serving: sharded concurrent ingest + epoch-snapshot queries ------
    // Fixed mixed read/write work: N_OPS operations, a `mix`-percent
    // slice of which are 64-arc write batches (cycling the oriented edge
    // stream), the rest 256-destination row-sweep queries. The serial
    // baseline interleaves both on one thread over a plain `ProbGraph`;
    // the serving layer runs the same writes on the main thread (staged,
    // publishing an epoch every PUBLISH_EVERY batches so the parallel
    // lane drain engages) while a query thread serves the same queries
    // off pinned epoch snapshots. `speedup` = serial wall / serving wall
    // for identical op mixes. CI gates `mixed_vs_serial_1shard` (mix 10 %,
    // one lane: epoch/publish overhead must not tax a query-dominated mix
    // by more than the noise floor) and `mixed_vs_serial_4shard` (mix
    // 50 %, four lanes: ingest overlap + parallel drains must win).
    struct ServingCell {
        ms: f64,
        qps: f64,
    }
    const SERVING_MIXES: [usize; 3] = [0, 10, 50];
    const SERVING_SHARDS: [usize; 3] = [1, 2, 4];
    let serving_ops: usize = 2048;
    let serving_write_batch: usize = 64;
    let serving_publish_every: usize = 32;
    let serving_dests: usize = 256.min(n);
    let mut serving_serial: Vec<ServingCell> = Vec::new();
    let mut serving_sharded: Vec<Vec<ServingCell>> = Vec::new();
    {
        use probgraph::serving::ShardedProbGraph;
        let cfg = PgConfig::new(Representation::Bloom { b: 2 }, 0.25);
        let dests: Vec<u32> = (0..serving_dests as u32).collect();
        // Write batch j cycles the oriented edge stream.
        let batch_for = |j: usize| -> Vec<(u32, u32)> {
            (0..serving_write_batch)
                .map(|t| edges[(j * serving_write_batch + t) % edges.len()])
                .collect()
        };
        struct RowSweep<'a> {
            v: u32,
            us: &'a [u32],
            buf: &'a mut Vec<f64>,
        }
        impl OracleVisitor for RowSweep<'_> {
            type Output = f64;
            fn visit<O: IntersectionOracle>(self, o: &O) -> f64 {
                o.estimate_row(self.v, self.us, self.buf);
                self.buf.iter().sum()
            }
        }
        // Evenly spaced write ops: op i writes iff the scaled write
        // counter advances — the serial and sharded runs use the same
        // deterministic schedule.
        let is_write = |i: usize, writes: usize| -> bool {
            (i + 1) * writes / serving_ops != i * writes / serving_ops
        };
        for &mix in &SERVING_MIXES {
            let writes = serving_ops * mix / 100;
            let queries = serving_ops - writes;
            // Serial baseline: one thread, one ProbGraph, interleaved.
            let t_serial = median(
                (0..reps)
                    .map(|_| {
                        let mut p = ProbGraph::stream_from(n, g.memory_bytes(), &cfg, &[]);
                        p.apply_arcs(&edges);
                        let mut buf = Vec::new();
                        let mut j = 0usize;
                        let t0 = Instant::now();
                        let mut acc = 0.0;
                        for i in 0..serving_ops {
                            if is_write(i, writes) {
                                p.apply_arcs(&batch_for(j));
                                j += 1;
                            } else {
                                acc += p.with_oracle(RowSweep {
                                    v: (i % n) as u32,
                                    us: &dests,
                                    buf: &mut buf,
                                });
                            }
                        }
                        black_box(acc);
                        t0.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            serving_serial.push(ServingCell {
                ms: t_serial * 1e3,
                qps: queries as f64 / t_serial,
            });
            println!(
                "{:>22}: {:8.2} ms | {:9.0} queries/s",
                format!("serving_serial_mix{mix}"),
                t_serial * 1e3,
                queries as f64 / t_serial
            );
        }
        for (si, &shards) in SERVING_SHARDS.iter().enumerate() {
            serving_sharded.push(Vec::new());
            for &mix in &SERVING_MIXES {
                let writes = serving_ops * mix / 100;
                let queries = serving_ops - writes;
                let t_shard = median(
                    (0..reps)
                        .map(|_| {
                            let mut srv =
                                ShardedProbGraph::with_shards(n, g.memory_bytes(), &cfg, shards);
                            srv.apply_arcs(&edges);
                            srv.publish_epoch();
                            let reader = srv.reader();
                            let t0 = Instant::now();
                            std::thread::scope(|scope| {
                                // The query thread: the same Q row sweeps,
                                // each pinning whatever epoch is current.
                                scope.spawn(|| {
                                    let mut buf = Vec::new();
                                    let mut acc = 0.0;
                                    for i in 0..queries {
                                        acc += reader.query_with_oracle(RowSweep {
                                            v: (i % n) as u32,
                                            us: &dests,
                                            buf: &mut buf,
                                        });
                                    }
                                    black_box(acc);
                                });
                                // The writer: stage batches, publish an
                                // epoch every PUBLISH_EVERY batches.
                                for j in 0..writes {
                                    srv.stage_arcs(&batch_for(j));
                                    if (j + 1) % serving_publish_every == 0 {
                                        srv.publish_epoch();
                                    }
                                }
                                srv.publish_epoch();
                            });
                            t0.elapsed().as_secs_f64()
                        })
                        .collect(),
                );
                serving_sharded[si].push(ServingCell {
                    ms: t_shard * 1e3,
                    qps: queries as f64 / t_shard,
                });
                println!(
                    "{:>22}: {:8.2} ms | {:9.0} queries/s",
                    format!("serving_s{shards}_mix{mix}"),
                    t_shard * 1e3,
                    queries as f64 / t_shard
                );
            }
        }
    }
    // Gate ratios: serial wall / serving wall on the same op mix.
    let serving_r1 = serving_serial[1].ms / serving_sharded[0][1].ms;
    let serving_r4 = serving_serial[2].ms / serving_sharded[2][2].ms;
    println!(
        "{:>22}: 1-shard mix10 {serving_r1:.2}x | 4-shard mix50 {serving_r4:.2}x",
        "serving_vs_serial"
    );

    // --- stratified: degree-stratified budgets vs the uniform plan ---------
    // Fixed skewed workload (independent of PG_SCALE so the cell is
    // comparable across runs): a Chung-Lu power-law graph, degree-oriented,
    // triangle-counted. Both plans spend the same storage budget; the
    // stratified plan gives the top-5% highest-degree vertices 2x-width
    // sketches paid for by narrowing the tail. Gated in CI for bf2
    // (validate_bench.py): the stratified TC relative error must not exceed
    // uniform's, and `runtime_ratio` (uniform ms / stratified ms) must stay
    // >= 0.90 — the heterogeneous row sweep must price within the usual
    // noise floor of the uniform kernel. kmv rides along informationally
    // (its coarse k granularity can collapse the plan to one stratum).
    struct StratCell {
        relerr: f64,
        ms: f64,
        snapshot_bytes: u64,
        n_strata: usize,
    }
    struct StratEntry {
        name: &'static str,
        uniform: StratCell,
        stratified: StratCell,
        runtime_ratio: f64,
    }
    let strat_n: usize = 8192;
    let strat_m: usize = 131_072;
    let strat_gamma = 2.0;
    let strat_seed = 7;
    let strat_budget = 0.15;
    let strat_spec = pg_sketch::StrataSpec::new(vec![0.05], vec![2, 1]);
    let sgraph = pg_graph::gen::chung_lu(strat_n, strat_m, strat_gamma, strat_seed);
    let sdag = pg_graph::orient_by_degree(&sgraph);
    let strat_exact = probgraph::algorithms::triangles::count_exact_on_dag(&sdag) as f64;
    let mut stratified_entries: Vec<StratEntry> = Vec::new();
    {
        let dir = std::env::temp_dir().join(format!("pg_speedtest_strat_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create stratified bench dir");
        let measure = |cfg: &PgConfig, tag: &str| -> StratCell {
            let pg = ProbGraph::build_dag(&sdag, sgraph.memory_bytes(), cfg);
            let timed = time_median(reps, || {
                black_box(probgraph::algorithms::triangles::count_approx_on_dag(
                    &sdag, &pg,
                ))
            });
            let est = probgraph::algorithms::triangles::count_approx_on_dag(&sdag, &pg);
            let path = dir.join(format!("{tag}.pgsnap"));
            pg.save_snapshot(&path).expect("save stratified snapshot");
            let snapshot_bytes = std::fs::metadata(&path).expect("stat snapshot").len();
            StratCell {
                relerr: (est / strat_exact - 1.0).abs(),
                ms: timed.seconds * 1e3,
                snapshot_bytes,
                n_strata: pg.stratified_params().map_or(1, |sp| sp.n_strata()),
            }
        };
        for (name, rep) in [
            ("bf2", Representation::Bloom { b: 2 }),
            ("kmv", Representation::Kmv),
        ] {
            let uniform = measure(
                &PgConfig::new(rep, strat_budget),
                &format!("{name}_uniform"),
            );
            let stratified = measure(
                &PgConfig::stratified(rep, strat_budget, strat_spec.clone()),
                &format!("{name}_strat"),
            );
            let runtime_ratio = uniform.ms / stratified.ms;
            println!(
                "{:>22}: relerr {:.4} -> {:.4} | runtime ratio {runtime_ratio:.2} | strata {}",
                format!("stratified_{name}"),
                uniform.relerr,
                stratified.relerr,
                stratified.n_strata
            );
            stratified_entries.push(StratEntry {
                name,
                uniform,
                stratified,
                runtime_ratio,
            });
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- machine-readable emission ---------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"name\": \"econ-psmigr1\", \"scale\": {scale}, \"n\": {}, \"m\": {}, \"oriented_edges\": {m}}},\n",
        g.num_vertices(),
        g.num_edges()
    ));
    json.push_str(&format!(
        "  \"sketch_params\": {{\"bf_bits\": {bits_per_set}, \"bf_b\": 2, \"mh_k\": {k}, \"budget\": 0.25}},\n"
    ));
    let topo = cache_topology();
    json.push_str(&format!(
        "  \"host\": {{\"l1d_bytes\": {}, \"l2_bytes\": {}, \"l3_bytes\": {}, \"line_bytes\": {}, \"tile_bytes\": {}}},\n",
        topo.l1d_bytes,
        topo.l2_bytes,
        topo.l3_bytes,
        topo.line_bytes,
        tile_bytes()
    ));
    json.push_str("  \"ns_per_edge\": {\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {:.3}{comma}\n",
            e.name, e.ns_per_edge
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"fused_vs_naive\": {{\"bf_and\": {and_speedup:.3}, \"bf_or\": {or_speedup:.3}, \"bf_all3\": {all_speedup:.3}}},\n"
    ));
    json.push_str("  \"row_batch\": {\n");
    for (i, r) in row_batch.iter().enumerate() {
        let comma = if i + 1 == row_batch.len() { "" } else { "," };
        let lanes = r
            .lane_ns
            .map(|l| {
                format!(
                    ", \"lanes\": {{\"2\": {:.3}, \"3\": {:.3}, \"4\": {:.3}}}",
                    l[0], l[1], l[2]
                )
            })
            .unwrap_or_default();
        json.push_str(&format!(
            "    \"{}\": {{\"scalar_row_ns\": {:.3}, \"multi_ns\": {:.3}, \"speedup\": {:.3}{lanes}}}{comma}\n",
            r.name,
            r.scalar_row_ns,
            r.multi_ns,
            r.scalar_row_ns / r.multi_ns
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"dispatch\": {\n");
    for (i, d) in dispatch.iter().enumerate() {
        let comma = if i + 1 == dispatch.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"per_edge_ns\": {:.3}, \"hoisted_ns\": {:.3}, \"speedup\": {:.3}}}{comma}\n",
            d.name,
            d.per_edge_ns,
            d.hoisted_ns,
            d.per_edge_ns / d.hoisted_ns
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"tiling\": {\n");
    json.push_str(&format!(
        "    \"workload\": {{\"n\": {n_t}, \"m\": {m_t}, \"store_bytes\": {}}},\n",
        n_t * window_bytes
    ));
    json.push_str(&format!(
        "    \"plan\": {{\"tile_ids\": {}, \"batch\": {}, \"window_bytes\": {window_bytes}}},\n",
        tile_plan.tile_ids, tile_plan.batch
    ));
    for (i, t) in tiling.iter().enumerate() {
        let comma = if i + 1 == tiling.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"multi_ns\": {:.3}, \"tiled_ns\": {:.3}, \"speedup\": {:.3}}}{comma}\n",
            t.name,
            t.multi_ns,
            t.tiled_ns,
            t.multi_ns / t.tiled_ns
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"streaming\": {\n");
    for (i, s) in streaming.iter().enumerate() {
        let comma = if i + 1 == streaming.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"ns_per_insert\": {:.3}, \"single_insert_ns\": {:.3}, \"rebuild_ns\": {:.1}, \"update_vs_rebuild\": {:.3}, \"crossover_edges\": {:.1}}}{comma}\n",
            s.name, s.ns_per_insert, s.single_insert_ns, s.rebuild_ns, s.update_vs_rebuild, s.crossover_edges
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"streaming_removal\": {\n");
    for (i, r) in removal.iter().enumerate() {
        let comma = if i + 1 == removal.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"insert_ns\": {:.3}, \"remove_ns\": {:.3}, \"single_remove_ns\": {:.3}, \"remove_vs_insert\": {:.3}, \"saturated_counters\": {}}}{comma}\n",
            r.name, r.insert_ns, r.remove_ns, r.single_remove_ns, r.remove_vs_insert, r.saturated_counters
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"snapshot\": {\n");
    for (i, s) in snapshot.iter().enumerate() {
        let comma = if i + 1 == snapshot.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{\"bytes\": {}, \"save_gbps\": {:.3}, \"load_gbps\": {:.3}, \"load_vs_build\": {:.3}}}{comma}\n",
            s.name, s.bytes, s.save_gbps, s.load_gbps, s.load_vs_build
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"serving\": {\n");
    json.push_str(&format!(
        "    \"workload\": {{\"ops\": {serving_ops}, \"write_batch\": {serving_write_batch}, \"publish_every\": {serving_publish_every}, \"dests\": {serving_dests}, \"threads\": {}}},\n",
        pg_parallel::current_threads()
    ));
    let mix_cells = |cells: &[ServingCell]| -> String {
        SERVING_MIXES
            .iter()
            .zip(cells)
            .map(|(mix, c)| {
                format!(
                    "\"mix{mix}\": {{\"ms\": {:.3}, \"qps\": {:.1}}}",
                    c.ms, c.qps
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    json.push_str(&format!(
        "    \"serial\": {{{}}},\n",
        mix_cells(&serving_serial)
    ));
    json.push_str("    \"sharded\": {\n");
    for (si, shards) in SERVING_SHARDS.iter().enumerate() {
        let comma = if si + 1 == SERVING_SHARDS.len() {
            ""
        } else {
            ","
        };
        json.push_str(&format!(
            "      \"shards{shards}\": {{{}}}{comma}\n",
            mix_cells(&serving_sharded[si])
        ));
    }
    json.push_str("    },\n");
    json.push_str(&format!(
        "    \"mixed_vs_serial_1shard\": {serving_r1:.3},\n"
    ));
    json.push_str(&format!(
        "    \"mixed_vs_serial_4shard\": {serving_r4:.3}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"stratified\": {\n");
    json.push_str(&format!(
        "    \"workload\": {{\"model\": \"chung_lu\", \"n\": {strat_n}, \"m\": {strat_m}, \"gamma\": {strat_gamma}, \"seed\": {strat_seed}, \"budget\": {strat_budget}, \"spec\": \"top5pct_x2\", \"exact_tc\": {strat_exact}}},\n"
    ));
    for (i, e) in stratified_entries.iter().enumerate() {
        let comma = if i + 1 == stratified_entries.len() {
            ""
        } else {
            ","
        };
        json.push_str(&format!(
            "    \"{}\": {{\"uniform\": {{\"relerr\": {:.4}, \"ms\": {:.3}, \"snapshot_bytes\": {}}}, \"stratified\": {{\"relerr\": {:.4}, \"ms\": {:.3}, \"snapshot_bytes\": {}, \"n_strata\": {}}}, \"runtime_ratio\": {:.3}}}{comma}\n",
            e.name,
            e.uniform.relerr,
            e.uniform.ms,
            e.uniform.snapshot_bytes,
            e.stratified.relerr,
            e.stratified.ms,
            e.stratified.snapshot_bytes,
            e.stratified.n_strata,
            e.runtime_ratio
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");
    let path = "BENCH_kernels.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_kernels.json");
    println!("wrote {path}");

    // --- end-to-end sanity: exact vs PG triangle counting -----------------
    let t0 = Instant::now();
    let tc = probgraph::algorithms::triangles::count_exact_on_dag(&dag);
    let te = t0.elapsed().as_secs_f64();
    println!("exact tc={tc} in {te:.3}s");
    for (lbl, rep) in [
        ("BF2", probgraph::Representation::Bloom { b: 2 }),
        ("1H", probgraph::Representation::OneHash),
    ] {
        let pg = probgraph::ProbGraph::build_dag(
            &dag,
            g.memory_bytes(),
            &probgraph::PgConfig::new(rep, 0.25),
        );
        let t0 = Instant::now();
        let est = probgraph::algorithms::triangles::count_approx_on_dag(&dag, &pg);
        let tp = t0.elapsed().as_secs_f64();
        println!(
            "{lbl}: est={est:.0} in {tp:.3}s speedup={:.2} rel={:.3}",
            te / tp,
            est / tc as f64
        );
    }
}
