//! Table VI: algorithm-level work advantages of ProbGraph — measured
//! operation totals and runtimes for Triangle Counting, 4-Clique Counting,
//! and Clustering under CSR vs PG(BF) vs PG(MH).

use pg_bench::harness::{print_header, print_row, time_median};
use pg_bench::workloads::env_scale;
use pg_graph::{gen, orient_by_degree};
use pg_sketch::SketchParams;
use probgraph::algorithms::{cliques, clustering, triangles};
use probgraph::workdepth;
use probgraph::{PgConfig, ProbGraph, Representation};

fn main() {
    let scale = env_scale(6);
    let g = gen::instance("econ-psmigr1", scale).unwrap();
    let dag = orient_by_degree(&g);
    println!(
        "# Table VI — algorithm work: econ-psmigr1 stand-in (n={}, m={}, PG_SCALE={scale})",
        g.num_vertices(),
        g.num_edges()
    );
    println!();
    let cfg_bf = PgConfig::new(Representation::Bloom { b: 2 }, 0.25);
    let cfg_mh = PgConfig::new(Representation::OneHash, 0.25);
    let pg_bf = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg_bf);
    let pg_mh = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg_mh);
    let bits = match pg_bf.params() {
        SketchParams::Bloom { bits_per_set, .. } => bits_per_set,
        _ => unreachable!(),
    };
    let k = match pg_mh.params() {
        SketchParams::OneHash { k } => k,
        _ => unreachable!(),
    };
    println!("resolved sketch parameters: B = {bits} bits, k = {k}");
    println!();
    print_header(&["algorithm", "variant", "measured work [ops]", "runtime [s]"]);

    // Triangle counting.
    let w_csr = workdepth::tc_work_csr(&dag);
    let w_bf = workdepth::tc_work_bf(&dag, bits);
    let w_mh = workdepth::tc_work_mh(&dag, k);
    let t_csr = time_median(3, || triangles::count_exact_on_dag(&dag)).seconds;
    let t_bf = time_median(3, || triangles::count_approx_on_dag(&dag, &pg_bf)).seconds;
    let t_mh = time_median(3, || triangles::count_approx_on_dag(&dag, &pg_mh)).seconds;
    print_row(&[
        "TC".into(),
        "CSR  O(n·d²)".into(),
        w_csr.to_string(),
        format!("{t_csr:.4}"),
    ]);
    print_row(&[
        "TC".into(),
        "BF   O(n·d·B/W)".into(),
        w_bf.to_string(),
        format!("{t_bf:.4}"),
    ]);
    print_row(&[
        "TC".into(),
        "MH   O(n·d·k)".into(),
        w_mh.to_string(),
        format!("{t_mh:.4}"),
    ]);

    // 4-clique counting (runtime only; work model is d× the TC one).
    let t_csr = time_median(2, || cliques::count_exact_on_dag(&dag)).seconds;
    let t_bf = time_median(2, || cliques::count_approx_on_dag(&dag, &pg_bf)).seconds;
    let t_mh = time_median(2, || cliques::count_approx_on_dag(&dag, &pg_mh)).seconds;
    print_row(&[
        "4CC".into(),
        "CSR  O(n·d³)".into(),
        "-".into(),
        format!("{t_csr:.4}"),
    ]);
    print_row(&[
        "4CC".into(),
        "BF   O(n·d²·B/W)".into(),
        "-".into(),
        format!("{t_bf:.4}"),
    ]);
    print_row(&[
        "4CC".into(),
        "MH   O(n·d²·k)".into(),
        "-".into(),
        format!("{t_mh:.4}"),
    ]);

    // Clustering (per-edge intersection over full neighborhoods).
    let pgf_bf = ProbGraph::build(&g, &cfg_bf);
    let pgf_mh = ProbGraph::build(&g, &cfg_mh);
    let kind = clustering::SimilarityKind::CommonNeighbors;
    let t_csr = time_median(3, || clustering::jarvis_patrick_exact(&g, kind, 2.0)).seconds;
    let t_bf = time_median(3, || clustering::jarvis_patrick_pg(&g, &pgf_bf, kind, 2.0)).seconds;
    let t_mh = time_median(3, || clustering::jarvis_patrick_pg(&g, &pgf_mh, kind, 2.0)).seconds;
    print_row(&[
        "Clustering".into(),
        "CSR  O(n·d²)".into(),
        "-".into(),
        format!("{t_csr:.4}"),
    ]);
    print_row(&[
        "Clustering".into(),
        "BF   O(n·d·B/W)".into(),
        "-".into(),
        format!("{t_bf:.4}"),
    ]);
    print_row(&[
        "Clustering".into(),
        "MH   O(n·d·k)".into(),
        "-".into(),
        format!("{t_mh:.4}"),
    ]);
}
