//! Fig. 5: 4-clique counting — speedup / relative count / relative memory
//! on real-world stand-ins and Kronecker graphs.

use pg_bench::harness::{print_header, print_row, time_median};
use pg_bench::workloads::{env_scale, kronecker_suite};
use pg_graph::{gen, orient_by_degree, CsrGraph};
use probgraph::algorithms::cliques;
use probgraph::{PgConfig, ProbGraph, Representation};

fn run(name: &str, g: &CsrGraph) {
    let dag = orient_by_degree(g);
    let exact = time_median(2, || cliques::count_exact_on_dag(&dag));
    let ck = exact.value as f64;
    if ck == 0.0 {
        return;
    }
    for (label, cfg) in [
        ("PG-BF", PgConfig::new(Representation::Bloom { b: 2 }, 0.25)),
        ("PG-MH", PgConfig::new(Representation::OneHash, 0.25)),
    ] {
        let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
        let t = time_median(2, || cliques::count_approx_on_dag(&dag, &pg));
        print_row(&[
            name.into(),
            label.into(),
            format!("{:.2}", exact.seconds / t.seconds),
            format!("{:.3}", probgraph::relative_count(t.value, ck)),
            format!("{:.3}", pg.memory_bytes() as f64 / g.memory_bytes() as f64),
        ]);
    }
}

fn main() {
    let scale = env_scale(8);
    println!("# Fig. 5 — 4-clique counting (PG_SCALE={scale})");
    println!();
    print_header(&["graph", "scheme", "speedup", "rel-count", "rel-mem"]);
    for name in [
        "bio-SC-GT",
        "bio-CE-PG",
        "econ-beacxc",
        "bn-mouse_brain_1",
        "soc-fbMsg",
    ] {
        let g = gen::instance(name, scale).expect("known family");
        run(name, &g);
    }
    for (name, g) in kronecker_suite(10, 8) {
        run(&name, &g);
    }
}
