//! Fig. 4: speedup / relative count / relative memory for Triangle
//! Counting and the three Clustering variants, on real-world stand-ins and
//! Kronecker graphs.
//!
//! Each data point = (scheme, graph): speedup over the exact tuned
//! baseline, relative pattern count (1.0 = exact), and relative additional
//! memory (sketch bytes / CSR bytes).

use pg_bench::harness::{print_header, print_row, time_median};
use pg_bench::workloads::{env_scale, kronecker_suite, real_world_suite};
use pg_graph::{orient_by_degree, CsrGraph};
use probgraph::algorithms::{clustering, triangles};
use probgraph::baselines::{colorful, doulion};
use probgraph::{PgConfig, ProbGraph, Representation};

fn pg_cfgs() -> Vec<(&'static str, PgConfig)> {
    vec![
        ("PG-BF", PgConfig::new(Representation::Bloom { b: 2 }, 0.25)),
        ("PG-MH", PgConfig::new(Representation::OneHash, 0.25)),
    ]
}

fn run_tc(name: &str, g: &CsrGraph) {
    let dag = orient_by_degree(g);
    let exact = time_median(3, || triangles::count_exact_on_dag(&dag));
    let tc = exact.value as f64;
    for (label, cfg) in pg_cfgs() {
        let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
        let t = time_median(3, || triangles::count_approx_on_dag(&dag, &pg));
        print_row(&[
            "TC".into(),
            name.into(),
            label.into(),
            format!("{:.2}", exact.seconds / t.seconds),
            format!("{:.3}", probgraph::relative_count(t.value, tc)),
            format!("{:.3}", pg.memory_bytes() as f64 / g.memory_bytes() as f64),
        ]);
    }
    let t = time_median(3, || doulion::triangle_estimate(g, 0.25, 7).estimate);
    print_row(&[
        "TC".into(),
        name.into(),
        "Doulion(p=.25)".into(),
        format!("{:.2}", exact.seconds / t.seconds),
        format!("{:.3}", probgraph::relative_count(t.value, tc)),
        "0.250".into(),
    ]);
    let t = time_median(3, || colorful::triangle_estimate(g, 2, 7).estimate);
    print_row(&[
        "TC".into(),
        name.into(),
        "Colorful(N=2)".into(),
        format!("{:.2}", exact.seconds / t.seconds),
        format!("{:.3}", probgraph::relative_count(t.value, tc)),
        "0.500".into(),
    ]);
}

fn run_clustering(name: &str, g: &CsrGraph, kind: clustering::SimilarityKind, tau: f64) {
    let problem = format!("Cluster-{kind:?}");
    let exact = time_median(3, || clustering::jarvis_patrick_exact(g, kind, tau));
    let exact_clusters = exact.value.num_clusters as f64;
    for (label, cfg) in pg_cfgs() {
        let pg = ProbGraph::build(g, &cfg);
        let t = time_median(3, || clustering::jarvis_patrick_pg(g, &pg, kind, tau));
        print_row(&[
            problem.clone(),
            name.into(),
            label.into(),
            format!("{:.2}", exact.seconds / t.seconds),
            format!(
                "{:.3}",
                probgraph::relative_count(t.value.num_clusters as f64, exact_clusters)
            ),
            format!("{:.3}", pg.memory_bytes() as f64 / g.memory_bytes() as f64),
        ]);
    }
}

fn main() {
    let scale = env_scale(4);
    println!("# Fig. 4 — TC + Clustering: speedup / accuracy / memory (PG_SCALE={scale})");
    println!();
    print_header(&[
        "problem",
        "graph",
        "scheme",
        "speedup",
        "rel-count",
        "rel-mem",
    ]);
    let mut graphs: Vec<(String, CsrGraph)> = real_world_suite(scale)
        .into_iter()
        .map(|(n, g)| (n.to_string(), g))
        .collect();
    graphs.extend(kronecker_suite(11, 16));
    for (name, g) in &graphs {
        run_tc(name, g);
        run_clustering(name, g, clustering::SimilarityKind::Jaccard, 0.05);
        run_clustering(name, g, clustering::SimilarityKind::Overlap, 0.10);
        run_clustering(name, g, clustering::SimilarityKind::CommonNeighbors, 2.0);
    }
}
