//! Table IV: work of the `|N_u ∩ N_v|` kernels — measured operation counts
//! against the paper's formulas `O(d_u + d_v)` (merge), `O(d_u log d_v)`
//! (galloping), `O(B/W)` (BF), `O(k)` (MinHash), plus measured runtimes of
//! each kernel on equal-budget sketches.

use pg_bench::harness::{print_header, print_row, time_median};
use pg_graph::gen;
use pg_sketch::{BloomCollection, BottomKCollection};
use probgraph::intersect::{gallop_count, merge_count};
use probgraph::workdepth;

fn main() {
    println!("# Table IV — |N_u ∩ N_v| kernel work");
    println!();
    print_header(&[
        "d_u",
        "d_v",
        "merge ops (≤ d_u+d_v)",
        "gallop ops (≈ d_u·log d_v)",
        "BF ops (B/W, B=2048)",
        "MH ops (k=64)",
    ]);
    let g = gen::erdos_renyi_gnm(4000, 4000 * 64, 3);
    let pairs = [(0u32, 1u32), (10, 2000), (42, 3999)];
    for (u, v) in pairs {
        let (nu, nv) = (g.neighbors(u), g.neighbors(v));
        let (s, l) = if nu.len() <= nv.len() {
            (nu, nv)
        } else {
            (nv, nu)
        };
        print_row(&[
            nu.len().to_string(),
            nv.len().to_string(),
            format!(
                "{} (bound {})",
                workdepth::merge_ops(nu, nv),
                nu.len() + nv.len()
            ),
            format!("{}", workdepth::gallop_ops(s, l)),
            format!("{}", workdepth::bf_intersect_ops(2048)),
            format!("{}", workdepth::mh_intersect_ops(64)),
        ]);
    }

    println!();
    println!("## Measured kernel latency (same pair, ns/op; sketches at B=2048 bits / k=64)");
    print_header(&["kernel", "ns per intersection"]);
    let n = g.num_vertices();
    let bloom = BloomCollection::build(n, 2048, 2, 7, |i| g.neighbors(i as u32));
    let bk = BottomKCollection::build(n, 64, 7, |i| g.neighbors(i as u32));
    let reps = 20_000usize;
    let t = time_median(3, || {
        let mut acc = 0usize;
        for i in 0..reps {
            let u = (i * 7919) % n;
            let v = (i * 104_729) % n;
            acc += merge_count(g.neighbors(u as u32), g.neighbors(v as u32));
        }
        acc
    });
    print_row(&[
        "CSR merge".into(),
        format!("{:.1}", t.seconds / reps as f64 * 1e9),
    ]);
    let t = time_median(3, || {
        let mut acc = 0usize;
        for i in 0..reps {
            let u = (i * 7919) % n;
            let v = (i * 104_729) % n;
            let (a, b) = (g.neighbors(u as u32), g.neighbors(v as u32));
            let (s, l) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            acc += gallop_count(s, l);
        }
        acc
    });
    print_row(&[
        "CSR gallop".into(),
        format!("{:.1}", t.seconds / reps as f64 * 1e9),
    ]);
    let t = time_median(3, || {
        let mut acc = 0usize;
        for i in 0..reps {
            acc += bloom.and_ones((i * 7919) % n, (i * 104_729) % n);
        }
        acc
    });
    print_row(&[
        "BF AND+popcnt".into(),
        format!("{:.1}", t.seconds / reps as f64 * 1e9),
    ]);
    let t = time_median(3, || {
        let mut acc = 0usize;
        for i in 0..reps {
            acc += bk.matches((i * 7919) % n, (i * 104_729) % n);
        }
        acc
    });
    print_row(&[
        "MH 1-hash merge".into(),
        format!("{:.1}", t.seconds / reps as f64 * 1e9),
    ]);
}
