//! Fig. 9: BF vs 1H scaling for Clustering (Common Neighbors) — the case
//! where the bitwise-AND kernel lets BF catch up with (or beat) MinHash at
//! high thread counts because the algorithm is completely dominated by
//! `|X ∩ Y|`.

use pg_bench::harness::{print_header, print_row, time_median};
use pg_bench::workloads::env_scale;
use pg_graph::gen;
use pg_parallel::{available_threads, with_threads};
use probgraph::algorithms::clustering::{jarvis_patrick_pg, SimilarityKind};
use probgraph::{PgConfig, ProbGraph, Representation};

fn main() {
    let scale = env_scale(1);
    let kscale = 13 - (scale.min(4) as u32 - 1);
    let g = gen::kronecker(kscale, 16, 123);
    let kind = SimilarityKind::CommonNeighbors;
    let tau = 2.0;
    println!("# Fig. 9 — Clustering (Common Neighbors): BF vs 1H scaling");
    println!();
    print_header(&["threads", "PG-BF [s]", "PG-1H [s]"]);
    let pg_bf = ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 2 }, 0.25));
    let pg_1h = ProbGraph::build(&g, &PgConfig::new(Representation::OneHash, 0.25));
    let mut t = 1usize;
    while t <= available_threads() {
        with_threads(t, || {
            let bf = time_median(3, || jarvis_patrick_pg(&g, &pg_bf, kind, tau)).seconds;
            let oh = time_median(3, || jarvis_patrick_pg(&g, &pg_1h, kind, tau)).seconds;
            print_row(&[t.to_string(), format!("{bf:.4}"), format!("{oh:.4}")]);
        });
        t *= 2;
    }
}
