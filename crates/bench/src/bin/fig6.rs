//! Fig. 6: per-graph Triangle-Counting bars — speedup, relative count,
//! relative memory — for ProbGraph against both theoretically grounded
//! baselines (Doulion, Colorful) and no-guarantee heuristics (Reduced
//! Execution, Partial Graph Processing, AutoApprox 1/2).

use pg_bench::harness::{print_header, print_row, time_median};
use pg_bench::workloads::{env_scale, real_world_suite};
use pg_graph::orient_by_degree;
use probgraph::algorithms::triangles;
use probgraph::baselines::{colorful, doulion, heuristics};
use probgraph::{PgConfig, ProbGraph, Representation};

fn main() {
    let scale = env_scale(4);
    println!("# Fig. 6 — Triangle Counting vs all baselines (PG_SCALE={scale})");
    println!();
    print_header(&["graph", "scheme", "speedup", "rel-count", "rel-mem"]);
    for (name, g) in real_world_suite(scale) {
        let dag = orient_by_degree(&g);
        let exact = time_median(3, || triangles::count_exact_on_dag(&dag));
        let tc = exact.value as f64;
        if tc == 0.0 {
            continue;
        }
        let emit = |scheme: &str, secs: f64, est: f64, rel_mem: f64| {
            print_row(&[
                name.into(),
                scheme.into(),
                format!("{:.2}", exact.seconds / secs),
                format!("{:.3}", probgraph::relative_count(est, tc)),
                format!("{:.3}", rel_mem),
            ]);
        };
        // ProbGraph (timed on the algorithm only; construction is a
        // one-off reported by the `construction` binary).
        for (label, cfg) in [
            ("PG-BF", PgConfig::new(Representation::Bloom { b: 2 }, 0.25)),
            ("PG-MH", PgConfig::new(Representation::OneHash, 0.25)),
        ] {
            let pg = ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg);
            let t = time_median(3, || triangles::count_approx_on_dag(&dag, &pg));
            emit(
                label,
                t.seconds,
                t.value,
                pg.memory_bytes() as f64 / g.memory_bytes() as f64,
            );
        }
        // Heuristics (no additional memory, no guarantees).
        let t = time_median(3, || heuristics::reduced_execution_tc(&g, 0.5, 7));
        emit("ReducedExec(ρ=.5)", t.seconds, t.value, 0.0);
        let t = time_median(3, || heuristics::partial_processing_tc(&g, 0.5, 7));
        emit("PartialProc(ρ=.5)", t.seconds, t.value, 0.0);
        let t = time_median(3, || heuristics::auto_approx1_tc(&g, 0.5, 7));
        emit("AutoApprox1(ρ=.5)", t.seconds, t.value, 0.0);
        let t = time_median(3, || heuristics::auto_approx2_tc(&g, 0.5, 7));
        emit("AutoApprox2(ρ=.5)", t.seconds, t.value, 0.0);
        // Theoretically grounded samplers.
        let t = time_median(3, || doulion::triangle_estimate(&g, 0.25, 7).estimate);
        emit("Doulion(p=.25)", t.seconds, t.value, 0.25);
        let t = time_median(3, || colorful::triangle_estimate(&g, 2, 7).estimate);
        emit("Colorful(N=2)", t.seconds, t.value, 0.5);
        emit("Exact", exact.seconds, tc, 0.0);
    }
}
