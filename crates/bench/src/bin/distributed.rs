//! §VIII-F: distributed-memory communication-volume model — sketches are
//! never split across nodes and shipping them instead of raw CSR
//! neighborhoods reduces communication (the paper reports up to ≈4×; the
//! reduction is `avg-boundary-degree · 4 B / sketch-bytes`).

use pg_bench::distmodel::{model_volume, random_partition};
use pg_bench::harness::{print_header, print_row};
use pg_bench::workloads::{env_scale, real_world_suite};
use pg_sketch::SketchParams;
use probgraph::{PgConfig, ProbGraph, Representation};

fn main() {
    let scale = env_scale(4);
    println!("# §VIII-F — modeled communication-volume reduction (PG_SCALE={scale})");
    println!();
    print_header(&[
        "graph",
        "parts",
        "sketch",
        "exact [MB]",
        "sketch [MB]",
        "reduction",
    ]);
    for (name, g) in real_world_suite(scale) {
        for parts in [2usize, 4, 16] {
            let assignment = random_partition(g.num_vertices(), parts, 11);
            for (label, rep) in [
                ("BF s=25%", Representation::Bloom { b: 2 }),
                ("1H s=25%", Representation::OneHash),
            ] {
                let pg = ProbGraph::build(&g, &PgConfig::new(rep, 0.25));
                let bytes_per_set = match pg.params() {
                    SketchParams::Bloom { bits_per_set, .. } => bits_per_set / 8,
                    // View bit + 4-bit counter per bucket (5 bits each).
                    SketchParams::CountingBloom { bits_per_set, .. } => {
                        bits_per_set * (1 + pg_sketch::counting_bloom::COUNTER_BITS) / 8
                    }
                    SketchParams::OneHash { k } => 4 * k,
                    SketchParams::KHash { k } => 4 * k,
                    SketchParams::Kmv { k } => 8 * k,
                    SketchParams::Hll { precision } => 1 << precision,
                };
                let v = model_volume(&g, &assignment, bytes_per_set);
                print_row(&[
                    name.into(),
                    parts.to_string(),
                    label.into(),
                    format!("{:.3}", v.exact_bytes as f64 / 1e6),
                    format!("{:.3}", v.sketch_bytes as f64 / 1e6),
                    format!("{:.2}x", v.reduction()),
                ]);
            }
        }
    }
}
