//! §VIII-F: distributed-memory communication volume — **measured**, not
//! modeled. Forks one worker process per part, runs a real
//! neighborhood-exchange round over Unix sockets (snapshot-format payloads,
//! `probgraph::exchange`), counts the bytes on every socket, and checks:
//!
//! * the distributed triangle count is **bit-equal** to the
//!   single-process estimate with the same grouping,
//! * the corrected communication model (`pg_bench::distmodel`) predicts
//!   the measured bytes within 10 % (it is exact for every suite graph),
//! * sketches beat shipping exact `N⁺` rows.
//!
//! Budget convention: a shipped sketch replaces an oriented `N⁺` row on
//! the wire, so `s = 25 %` is measured against the **oriented DAG's**
//! CSR footprint — the bytes the sketch actually displaces.
//!
//! Appends a `distributed` section to `BENCH_kernels.json` (the rest of
//! the file is written by the `speedtest` binary; run that first).

#[cfg(unix)]
fn main() {
    run::main()
}

#[cfg(not(unix))]
fn main() {
    eprintln!("the distributed exchange bench requires a Unix platform (fork + socketpair)");
}

#[cfg(unix)]
mod run {
    use pg_bench::distmodel::{model_pair_bytes, random_partition, wire_cost};
    use pg_bench::harness::{print_header, print_row};
    use pg_bench::workloads::{env_scale, real_world_suite};
    use probgraph::algorithms::triangles;
    use probgraph::exchange::{run_exchange, single_process_partials, ExchangeOptions};
    use probgraph::{PgConfig, ProbGraph, Representation};

    const PARTS: [usize; 3] = [2, 4, 16];
    const PARTITION_SEED: u64 = 11;
    /// The graph whose cells the CI gates read — dense enough that the
    /// BF reduction is comfortably on the claimed side of 2×.
    const JSON_GRAPH: &str = "dimacs-c500-9";

    struct Cell {
        parts: usize,
        measured_sketch: u64,
        measured_exact: u64,
        model_sketch: u64,
        model_exact: u64,
        reduction: f64,
        distributed_tc: f64,
        single_process_tc: f64,
        pair_sketch: Option<Vec<Vec<u64>>>,
    }

    pub fn main() {
        let scale = env_scale(4);
        let chunk_sets = 512usize;
        println!("# §VIII-F — measured multi-process exchange (PG_SCALE={scale})");
        println!();
        print_header(&[
            "graph",
            "parts",
            "sketch",
            "exact [MB]",
            "sketch [MB]",
            "reduction",
            "model err",
            "tc bit-eq",
        ]);

        let mut json_cells: Vec<(&'static str, Vec<Cell>)> = Vec::new();
        let mut json_meta: Option<(usize, usize)> = None;

        for (name, g) in real_world_suite(scale) {
            let dag = pg_graph::orient_by_degree(&g);
            let n = dag.num_vertices();
            // The budget base: what the sketches replace on the wire.
            let dag_bytes = 4 * (n + 1) + 4 * g.num_edges();
            for (label, key, rep) in [
                ("BF s=25%", "bf", Representation::Bloom { b: 2 }),
                ("1H s=25%", "onehash", Representation::OneHash),
            ] {
                let pg = ProbGraph::build_dag(&dag, dag_bytes, &PgConfig::new(rep, 0.25));
                let cost = wire_cost(pg.params(), pg.bf_estimator(), pg.seed());
                let mut cells = Vec::new();
                for parts in PARTS {
                    let assignment = random_partition(n, parts, PARTITION_SEED);
                    let opts = ExchangeOptions {
                        chunk_sets,
                        ..ExchangeOptions::default()
                    };
                    let report =
                        run_exchange(&dag, &pg, &assignment, parts, &opts).unwrap_or_else(|e| {
                            panic!("{name} x{parts} {label}: exchange failed: {e}")
                        });

                    // Gate 1: distributed count == single-process count,
                    // bit for bit, and sane vs the parallel kernel.
                    let reference: f64 = single_process_partials(&dag, &pg, &assignment, parts)
                        .iter()
                        .sum();
                    assert_eq!(
                        report.distributed_tc.to_bits(),
                        reference.to_bits(),
                        "{name} x{parts} {label}: distributed TC diverged from single-process"
                    );
                    let kernel = triangles::count_approx_on_dag(&dag, &pg);
                    let drift = (report.distributed_tc - kernel).abs() / kernel.abs().max(1.0);
                    assert!(
                        drift < 1e-6,
                        "{name} x{parts} {label}: partition-ordered sum drifted {drift} from kernel"
                    );

                    // Gate 2: the corrected model predicts the socket.
                    let (m_sketch, m_exact) =
                        model_pair_bytes(&dag, &assignment, parts, &cost, chunk_sets);
                    let model_sketch: u64 = m_sketch.iter().flatten().sum();
                    let model_exact: u64 = m_exact.iter().flatten().sum();
                    let measured_sketch = report.sketch_total();
                    let measured_exact = report.exact_total();
                    let err = |model: u64, measured: u64| {
                        (model as f64 - measured as f64).abs() / (measured as f64).max(1.0)
                    };
                    let sketch_err = err(model_sketch, measured_sketch);
                    let exact_err = err(model_exact, measured_exact);
                    assert!(
                        sketch_err <= 0.10 && exact_err <= 0.10,
                        "{name} x{parts} {label}: model off by {sketch_err:.3}/{exact_err:.3}"
                    );

                    print_row(&[
                        name.into(),
                        parts.to_string(),
                        label.into(),
                        format!("{:.3}", measured_exact as f64 / 1e6),
                        format!("{:.3}", measured_sketch as f64 / 1e6),
                        format!("{:.2}x", report.reduction()),
                        format!("{:.2}%", 100.0 * sketch_err.max(exact_err)),
                        "yes".into(),
                    ]);

                    cells.push(Cell {
                        parts,
                        measured_sketch,
                        measured_exact,
                        model_sketch,
                        model_exact,
                        reduction: report.reduction(),
                        distributed_tc: report.distributed_tc,
                        single_process_tc: reference,
                        pair_sketch: (parts <= 4).then(|| report.sketch_pair_bytes.clone()),
                    });
                }
                if name == JSON_GRAPH {
                    json_cells.push((key, cells));
                    json_meta = Some((n, g.num_edges()));
                }
            }
        }

        let (jn, jm) = json_meta.expect("JSON workload graph missing from the suite");
        let section = render_section(scale, chunk_sets, jn, jm, &json_cells);
        splice_into_bench_json("BENCH_kernels.json", &section);
        println!();
        println!("appended `distributed` section for {JSON_GRAPH} to BENCH_kernels.json");
    }

    fn render_section(
        scale: usize,
        chunk_sets: usize,
        n: usize,
        m: usize,
        reps: &[(&'static str, Vec<Cell>)],
    ) -> String {
        let mut s = String::new();
        s.push_str("  \"distributed\": {\n");
        s.push_str(&format!("    \"scale\": {scale},\n"));
        s.push_str(&format!("    \"chunk_sets\": {chunk_sets},\n"));
        s.push_str("    \"budget\": 0.25,\n");
        s.push_str("    \"budget_base\": \"oriented_dag_bytes\",\n");
        s.push_str(&format!(
            "    \"workload\": {{\"graph\": \"{JSON_GRAPH}\", \"n\": {n}, \"m\": {m}}},\n"
        ));
        for (ri, (key, cells)) in reps.iter().enumerate() {
            s.push_str(&format!("    \"{key}\": {{\n"));
            for (ci, c) in cells.iter().enumerate() {
                s.push_str(&format!("      \"parts{}\": {{\n", c.parts));
                s.push_str(&format!(
                    "        \"measured_sketch_bytes\": {}, \"measured_exact_bytes\": {},\n",
                    c.measured_sketch, c.measured_exact
                ));
                s.push_str(&format!(
                    "        \"model_sketch_bytes\": {}, \"model_exact_bytes\": {},\n",
                    c.model_sketch, c.model_exact
                ));
                s.push_str(&format!(
                    "        \"measured_reduction\": {:?},\n",
                    c.reduction
                ));
                s.push_str(&format!(
                    "        \"distributed_tc\": {:?}, \"single_process_tc\": {:?}",
                    c.distributed_tc, c.single_process_tc
                ));
                if let Some(pairs) = &c.pair_sketch {
                    let rows: Vec<String> = pairs
                        .iter()
                        .map(|row| {
                            let cells: Vec<String> = row.iter().map(|b| b.to_string()).collect();
                            format!("[{}]", cells.join(", "))
                        })
                        .collect();
                    s.push_str(&format!(
                        ",\n        \"pair_sketch_bytes\": [{}]\n",
                        rows.join(", ")
                    ));
                } else {
                    s.push('\n');
                }
                s.push_str("      }");
                s.push_str(if ci + 1 < cells.len() { ",\n" } else { "\n" });
            }
            s.push_str("    }");
            s.push_str(if ri + 1 < reps.len() { ",\n" } else { "\n" });
        }
        s.push_str("  }\n");
        s
    }

    /// Read-modify-write: `speedtest` owns the rest of the file and
    /// rewrites it wholesale, so this splice drops any previous
    /// `distributed` section (always the last key) and appends the fresh
    /// one before the closing brace.
    fn splice_into_bench_json(path: &str, section: &str) {
        let body = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
        let marker = "\"distributed\":";
        let head = match body.find(marker) {
            Some(pos) => body[..pos].trim_end().trim_end_matches(',').to_string(),
            None => {
                let t = body.trim_end();
                let t = t.strip_suffix('}').unwrap_or(t);
                t.trim_end().trim_end_matches(',').to_string()
            }
        };
        let sep = if head.trim() == "{" { "\n" } else { ",\n" };
        let out = format!("{head}{sep}{section}}}\n");
        std::fs::write(path, out).expect("write BENCH_kernels.json");
    }
}
