//! Fig. 3: accuracy of the `|X ∩ Y|` estimators.
//!
//! For each of the paper's five featured graphs, for budgets
//! `s ∈ {33 %, 10 %}` and `b ∈ {1, 4}`, prints the distribution (quartiles)
//! of the relative difference `| |X∩Y|̂ − |X∩Y| | / |X∩Y|` over all
//! adjacent vertex pairs — the data behind the paper's boxplots.

use pg_bench::harness::{print_header, print_row};
use pg_bench::workloads::env_scale;
use pg_graph::gen;
use pg_stats::Summary;
use probgraph::accuracy::edgewise_intersection_errors;
use probgraph::{BfEstimator, PgConfig, ProbGraph, Representation};

fn main() {
    let scale = env_scale(8);
    let graphs = [
        "ch-Si10H16",
        "bio-CE-PG",
        "dimacs-hat1500-3",
        "bn-mouse_brain_1",
        "econ-beacxc",
    ];
    println!("# Fig. 3 — |X∩Y| estimator accuracy (PG_SCALE={scale})");
    println!();
    print_header(&[
        "graph",
        "s",
        "b",
        "estimator",
        "p25",
        "median",
        "p75",
        "max",
    ]);
    for name in graphs {
        let g = gen::instance(name, scale).expect("known family");
        for (s, b) in [(0.33, 1usize), (0.33, 4), (0.10, 1), (0.10, 4)] {
            let cases: Vec<(&str, ProbGraph)> = vec![
                (
                    "BF-AND",
                    ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b }, s)),
                ),
                (
                    "BF-L",
                    ProbGraph::build(
                        &g,
                        &PgConfig::new(Representation::Bloom { b }, s)
                            .with_bf_estimator(BfEstimator::Limit),
                    ),
                ),
                (
                    "MH-1H",
                    ProbGraph::build(&g, &PgConfig::new(Representation::OneHash, s)),
                ),
                (
                    "MH-kH",
                    ProbGraph::build(&g, &PgConfig::new(Representation::KHash, s)),
                ),
                (
                    "HLL",
                    ProbGraph::build(&g, &PgConfig::new(Representation::Hll, s)),
                ),
            ];
            for (label, pg) in cases {
                let errs = edgewise_intersection_errors(&g, &pg);
                if errs.is_empty() {
                    continue;
                }
                let sm = Summary::of(&errs);
                print_row(&[
                    name.to_string(),
                    format!("{:.0}%", s * 100.0),
                    b.to_string(),
                    label.to_string(),
                    format!("{:.3}", sm.p25),
                    format!("{:.3}", sm.median),
                    format!("{:.3}", sm.p75),
                    format!("{:.3}", sm.max),
                ]);
            }
        }
    }
}
