//! Table VII: TC-estimator comparison — construction time, memory,
//! estimation time, accuracy, and estimator properties, for ProbGraph's
//! T̂C_AND / T̂C_kH / T̂C_1H vs Doulion and Colorful.

use pg_bench::harness::{print_header, print_row, time_median, time_once};
use pg_bench::workloads::env_scale;
use pg_graph::gen;
use probgraph::algorithms::triangles;
use probgraph::baselines::{colorful, doulion};
use probgraph::tc_estimator::{tc_estimate, TcBounds};
use probgraph::{PgConfig, ProbGraph, Representation};

fn main() {
    let scale = env_scale(4);
    let g = gen::instance("bio-WormNet-v3", scale).unwrap();
    let exact = triangles::count_exact(&g) as f64;
    println!(
        "# Table VII — TC estimators on bio-WormNet-v3 stand-in (n={}, m={}, TC={exact}, PG_SCALE={scale})",
        g.num_vertices(),
        g.num_edges()
    );
    println!();
    print_header(&[
        "estimator",
        "constr [s]",
        "memory [B]",
        "estim [s]",
        "rel-count",
        "properties",
        "bound",
    ]);
    for (label, rep, props, bound) in [
        (
            "T̂C_AND (BF b=2)",
            Representation::Bloom { b: 2 },
            "AU CN",
            "P (Thm VII.1)",
        ),
        (
            "T̂C_kH (MH)",
            Representation::KHash,
            "AU CN ML IN AE",
            "E (Thm VII.1)",
        ),
        (
            "T̂C_1H (MH)",
            Representation::OneHash,
            "AU CN",
            "E (Thm VII.1)",
        ),
    ] {
        let cfg = PgConfig::new(rep, 0.25);
        let built = time_once(|| ProbGraph::build(&g, &cfg));
        let pg = built.value;
        let est = time_median(3, || tc_estimate(&g, &pg));
        print_row(&[
            label.into(),
            format!("{:.4}", built.seconds),
            pg.memory_bytes().to_string(),
            format!("{:.4}", est.seconds),
            format!("{:.3}", est.value / exact),
            props.into(),
            bound.into(),
        ]);
    }
    let est = time_median(3, || doulion::triangle_estimate(&g, 0.25, 7));
    print_row(&[
        "Doulion (p=.25)".into(),
        "-".into(),
        (est.value.kept_edges * 8).to_string(),
        format!("{:.4}", est.seconds),
        format!("{:.3}", est.value.estimate / exact),
        "AU CN".into(),
        "none".into(),
    ]);
    let est = time_median(3, || colorful::triangle_estimate(&g, 2, 7));
    print_row(&[
        "Colorful (N=2)".into(),
        "-".into(),
        (est.value.kept_edges * 8).to_string(),
        format!("{:.4}", est.seconds),
        format!("{:.3}", est.value.estimate / exact),
        "AU CN".into(),
        "P".into(),
    ]);

    println!();
    println!("## Theorem VII.1 bound values at t = 0.5·TC");
    let b = TcBounds::for_graph(&g);
    let t = 0.5 * exact;
    let k = match ProbGraph::build(&g, &PgConfig::new(Representation::KHash, 0.25)).params() {
        pg_sketch::SketchParams::KHash { k } => k,
        _ => unreachable!(),
    };
    let bits =
        match ProbGraph::build(&g, &PgConfig::new(Representation::Bloom { b: 2 }, 0.25)).params() {
            pg_sketch::SketchParams::Bloom { bits_per_set, .. } => bits_per_set,
            _ => unreachable!(),
        };
    println!("- BF bound (b=2, B={bits}): {:.4}", b.bloom(bits, 2, t));
    println!("- MH plain bound (k={k}): {:.4}", b.minhash(k, t));
    println!("- MH refined bound (k={k}): {:.4}", b.minhash_refined(k, t));
}
