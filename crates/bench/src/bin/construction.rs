//! §VIII-G: construction cost analysis — the claim that building the
//! ProbGraph representation costs less than 50 % of a single algorithm
//! execution in the majority of cases (and is amortized across runs).

use pg_bench::harness::{print_header, print_row, time_median, time_once};
use pg_bench::workloads::{env_scale, real_world_suite};
use pg_graph::orient_by_degree;
use probgraph::algorithms::triangles;
use probgraph::{PgConfig, ProbGraph, Representation};

fn main() {
    let scale = env_scale(4);
    println!("# §VIII-G — construction cost vs one TC execution (PG_SCALE={scale})");
    println!();
    print_header(&[
        "graph",
        "representation",
        "construction [s]",
        "exact TC [s]",
        "construction / exact-TC",
    ]);
    for (name, g) in real_world_suite(scale) {
        let dag = orient_by_degree(&g);
        let t_tc = time_median(3, || triangles::count_exact_on_dag(&dag)).seconds;
        for (label, rep) in [
            ("BF b=1", Representation::Bloom { b: 1 }),
            ("BF b=2", Representation::Bloom { b: 2 }),
            ("BF b=8", Representation::Bloom { b: 8 }),
            ("1-Hash", Representation::OneHash),
            ("k-Hash", Representation::KHash),
        ] {
            let cfg = PgConfig::new(rep, 0.25);
            let t_build = time_once(|| ProbGraph::build_dag(&dag, g.memory_bytes(), &cfg)).seconds;
            print_row(&[
                name.into(),
                label.into(),
                format!("{t_build:.4}"),
                format!("{t_tc:.4}"),
                format!("{:.2}", t_build / t_tc),
            ]);
        }
    }
}
