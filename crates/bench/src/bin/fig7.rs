//! Fig. 7: per-graph Clustering (Jaccard vertex similarity) bars —
//! speedup, relative cluster count (cut off at 10, as in the paper's
//! plot), relative memory.

use pg_bench::harness::{print_header, print_row, time_median};
use pg_bench::workloads::{env_scale, real_world_suite};
use probgraph::algorithms::clustering::{jarvis_patrick_exact, jarvis_patrick_pg, SimilarityKind};
use probgraph::{PgConfig, ProbGraph, Representation};

fn main() {
    let scale = env_scale(4);
    let tau = 0.05;
    let kind = SimilarityKind::Jaccard;
    println!("# Fig. 7 — Clustering (Jaccard), τ={tau} (PG_SCALE={scale})");
    println!();
    print_header(&["graph", "scheme", "speedup", "rel-count(≤10)", "rel-mem"]);
    for (name, g) in real_world_suite(scale) {
        let exact = time_median(3, || jarvis_patrick_exact(&g, kind, tau));
        let base = exact.value.num_clusters as f64;
        for (label, cfg) in [
            ("PG-BF", PgConfig::new(Representation::Bloom { b: 2 }, 0.25)),
            ("PG-MH", PgConfig::new(Representation::OneHash, 0.25)),
        ] {
            let pg = ProbGraph::build(&g, &cfg);
            let t = time_median(3, || jarvis_patrick_pg(&g, &pg, kind, tau));
            let rel = if base == 0.0 {
                if t.value.num_clusters == 0 {
                    1.0
                } else {
                    10.0
                }
            } else {
                (t.value.num_clusters as f64 / base).min(10.0)
            };
            print_row(&[
                name.into(),
                label.into(),
                format!("{:.2}", exact.seconds / t.seconds),
                format!("{rel:.3}"),
                format!("{:.3}", pg.memory_bytes() as f64 / g.memory_bytes() as f64),
            ]);
        }
        print_row(&[
            name.into(),
            "Exact".into(),
            "1.00".into(),
            "1.000".into(),
            "0.000".into(),
        ]);
    }
}
