//! Timing utilities following the paper's benchmarking methodology
//! (§VIII-A: warmup discarded, medians with non-parametric CIs).

use std::time::Instant;

/// A timed result.
#[derive(Clone, Copy, Debug)]
pub struct Timed<T> {
    /// The value the closure produced (last repetition).
    pub value: T,
    /// Median wall-clock seconds across repetitions.
    pub seconds: f64,
}

/// Times one execution (no warmup — for construction-style one-offs).
pub fn time_once<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let t0 = Instant::now();
    let value = f();
    Timed {
        value,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Runs `f` once as warmup (discarded, as the paper discards the first 1 %
/// of measurements), then `reps` measured times; reports the median.
pub fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> Timed<T> {
    assert!(reps >= 1);
    let _warmup = f();
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        last = Some(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Timed {
        value: last.unwrap(),
        seconds: times[times.len() / 2],
    }
}

/// Prints a markdown table header.
pub fn print_header(cols: &[&str]) {
    println!("| {} |", cols.join(" | "));
    println!(
        "|{}|",
        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Prints one markdown row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_measures_and_returns() {
        let t = time_once(|| {
            let mut s = 0u64;
            for i in 0..100_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(t.seconds >= 0.0);
        assert!(t.value > 0);
    }

    #[test]
    fn time_median_runs_warmup_plus_reps() {
        let mut calls = 0;
        let t = time_median(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4); // 1 warmup + 3 measured
        assert_eq!(t.value, 4);
    }
}
