//! Dataset selection shared by the experiment binaries.

use pg_graph::{gen, CsrGraph};

/// Reads `PG_SCALE` (≥ 1); `default` applies when unset/invalid.
pub fn env_scale(default: usize) -> usize {
    std::env::var("PG_SCALE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

/// A representative subset of the Table VIII stand-ins spanning the
/// paper's graph classes (biological power-law, dense economic, DIMACS
/// near-complete, chemistry mesh, social) at the given down-scale.
pub fn real_world_suite(scale: usize) -> Vec<(&'static str, CsrGraph)> {
    [
        "bio-SC-GT",
        "bio-CE-PG",
        "bio-SC-HT",
        "bio-HS-LC",
        "econ-beacxc",
        "econ-mbeacxc",
        "econ-orani678",
        "bn-mouse_brain_1",
        "dimacs-c500-9",
        "soc-fbMsg",
    ]
    .into_iter()
    .map(|name| {
        (
            name,
            gen::instance(name, scale).unwrap_or_else(|| panic!("unknown family {name}")),
        )
    })
    .collect()
}

/// Kronecker graphs of increasing scale (the synthetic suite of
/// Figs. 4–5 bottom panels).
pub fn kronecker_suite(max_scale: u32, edge_factor: usize) -> Vec<(String, CsrGraph)> {
    (8..=max_scale)
        .map(|s| {
            (
                format!("kron-2^{s}-ef{edge_factor}"),
                gen::kronecker(s, edge_factor, 0x4b52 ^ s as u64),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_build() {
        let rw = real_world_suite(50);
        assert_eq!(rw.len(), 10);
        for (name, g) in &rw {
            assert!(g.num_edges() > 0, "{name}");
        }
        let kr = kronecker_suite(9, 4);
        assert_eq!(kr.len(), 2);
    }

    #[test]
    fn env_scale_default() {
        std::env::remove_var("PG_SCALE");
        assert_eq!(env_scale(7), 7);
    }
}
