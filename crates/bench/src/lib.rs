//! # pg-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index) plus Criterion microbenchmarks. This library crate
//! holds the shared pieces: wall-clock timing with warmup and repetition
//! (§VIII-A follows the Hoefler–Belli benchmarking recommendations),
//! dataset selection, the distributed communication-volume model of
//! §VIII-F, and markdown row printing so every binary emits copy-pasteable
//! tables for EXPERIMENTS.md.
//!
//! All experiments honor two environment variables:
//!
//! * `PG_SCALE` — integer down-scaling of dataset sizes (default chosen per
//!   binary so a full run finishes in seconds; `PG_SCALE=1` reproduces the
//!   published sizes).
//! * `PG_THREADS` — thread count (default: all cores), as in `pg-parallel`.

pub mod distmodel;
pub mod harness;
pub mod workloads;

pub use harness::{time_median, time_once, Timed};
pub use workloads::{env_scale, kronecker_suite, real_world_suite};
