//! Seeded families of independent hash functions.
//!
//! Bloom filters need `b` hash functions, k-hash MinHash needs `k`
//! (§II-D of the paper, with the usual mutual-independence assumption).
//! A [`HashFamily`] materializes the per-function seeds once (derived from a
//! master seed via SplitMix64) so the hot loops pay only one multiply-mix
//! per evaluation.

use crate::mix::{splitmix64, xxmix64};
use crate::murmur3::murmur3_u64;

/// A family of `k` seeded hash functions over 64-bit keys (vertex IDs).
#[derive(Clone, Debug)]
pub struct HashFamily {
    seeds32: Vec<u32>,
    seeds64: Vec<u64>,
}

impl HashFamily {
    /// Creates a family of `k` functions from one master seed.
    ///
    /// Two families with different master seeds, or with the same master
    /// seed but different sizes, share no functions in common beyond what
    /// chance allows.
    pub fn new(k: usize, master_seed: u64) -> Self {
        let mut state = master_seed ^ 0x5bf0_3635_fa30_7e31;
        let mut seeds32 = Vec::with_capacity(k);
        let mut seeds64 = Vec::with_capacity(k);
        for _ in 0..k {
            let s = splitmix64(&mut state);
            seeds32.push(s as u32);
            seeds64.push(splitmix64(&mut state));
        }
        Self { seeds32, seeds64 }
    }

    /// Number of functions in the family.
    #[inline]
    pub fn len(&self) -> usize {
        self.seeds32.len()
    }

    /// True when the family is empty (`k == 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seeds32.is_empty()
    }

    /// 32-bit MurmurHash3 of `key` under function `i`.
    #[inline(always)]
    pub fn hash32(&self, i: usize, key: u64) -> u32 {
        murmur3_u64(key, self.seeds32[i])
    }

    /// 64-bit hash of `key` under function `i` (xxHash-style avalanche).
    #[inline(always)]
    pub fn hash64(&self, i: usize, key: u64) -> u64 {
        xxmix64(key, self.seeds64[i])
    }

    /// Hash of `key` under function `i`, reduced to a bucket in `0..m`.
    ///
    /// Uses the Lemire multiply-shift reduction, which is faster than `%`
    /// and unbiased enough for Bloom-filter bit placement.
    #[inline(always)]
    pub fn bucket(&self, i: usize, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        (((self.hash32(i, key) as u64) * (m as u64)) >> 32) as usize
    }

    /// Hash of `key` under function `i` mapped to the half-open unit
    /// interval `(0, 1]`, as KMV requires (§IX: `h : X → (0; 1]`).
    #[inline(always)]
    pub fn unit(&self, i: usize, key: u64) -> f64 {
        // 2^-64 * (h + 1) lies in (0, 1]; h==u64::MAX maps to exactly 1.0.
        let h = self.hash64(i, key);
        (h as f64 + 1.0) * (1.0 / 18_446_744_073_709_551_616.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_size() {
        let f = HashFamily::new(5, 42);
        assert_eq!(f.len(), 5);
        assert!(!f.is_empty());
        assert!(HashFamily::new(0, 1).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = HashFamily::new(4, 7);
        let b = HashFamily::new(4, 7);
        for i in 0..4 {
            assert_eq!(a.hash32(i, 999), b.hash32(i, 999));
            assert_eq!(a.hash64(i, 999), b.hash64(i, 999));
        }
    }

    #[test]
    fn different_functions_differ() {
        let f = HashFamily::new(8, 3);
        let outs: Vec<u32> = (0..8).map(|i| f.hash32(i, 123_456)).collect();
        let uniq: std::collections::HashSet<_> = outs.iter().collect();
        assert!(uniq.len() >= 7, "functions should rarely collide: {outs:?}");
    }

    #[test]
    fn bucket_in_range_and_roughly_uniform() {
        let f = HashFamily::new(1, 11);
        let m = 64;
        let mut counts = vec![0u32; m];
        let trials = 64_000;
        for key in 0..trials {
            let bkt = f.bucket(0, key, m);
            assert!(bkt < m);
            counts[bkt] += 1;
        }
        let expect = trials as f64 / m as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > 0.5 * expect && (c as f64) < 1.5 * expect,
                "bucket {b} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn unit_interval_open_closed() {
        let f = HashFamily::new(2, 99);
        for key in 0..10_000u64 {
            for i in 0..2 {
                let u = f.unit(i, key);
                assert!(u > 0.0 && u <= 1.0, "u={u}");
            }
        }
    }

    #[test]
    fn unit_mean_is_about_half() {
        let f = HashFamily::new(1, 5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|k| f.unit(0, k)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
