//! Seeded families of independent hash functions.
//!
//! Bloom filters need `b` hash functions, k-hash MinHash needs `k`
//! (§II-D of the paper, with the usual mutual-independence assumption).
//! A [`HashFamily`] materializes the per-function seeds once (derived from a
//! master seed via SplitMix64) so the hot loops pay only one multiply-mix
//! per evaluation.

use crate::mix::{splitmix64, xxmix64};
use crate::murmur3::{fmix32, mix_premixed, murmur3_u64, premix32};

/// A family of `k` seeded hash functions over 64-bit keys (vertex IDs).
#[derive(Clone, Debug)]
pub struct HashFamily {
    seeds32: Vec<u32>,
    seeds64: Vec<u64>,
}

impl HashFamily {
    /// Creates a family of `k` functions from one master seed.
    ///
    /// Two families with different master seeds share no functions in
    /// common beyond what chance allows. Families of different sizes over
    /// the **same** master seed share their common prefix: per-function
    /// seeds are drawn sequentially from one SplitMix64 stream, so
    /// function `i` of a size-`k₁` family equals function `i` of a
    /// size-`k₂ > k₁` family for every `i < k₁`. The stratified MinHash
    /// layout leans on this — signatures of different widths agree on
    /// their shared slot prefix, so comparing the first `min(k)` slots is
    /// exactly the estimate both sketches would give at the narrower
    /// width (`prefix_property_is_stable` pins it).
    pub fn new(k: usize, master_seed: u64) -> Self {
        let mut state = master_seed ^ 0x5bf0_3635_fa30_7e31;
        let mut seeds32 = Vec::with_capacity(k);
        let mut seeds64 = Vec::with_capacity(k);
        for _ in 0..k {
            let s = splitmix64(&mut state);
            seeds32.push(s as u32);
            seeds64.push(splitmix64(&mut state));
        }
        Self { seeds32, seeds64 }
    }

    /// Number of functions in the family.
    #[inline]
    pub fn len(&self) -> usize {
        self.seeds32.len()
    }

    /// True when the family is empty (`k == 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seeds32.is_empty()
    }

    /// 32-bit MurmurHash3 of `key` under function `i`.
    #[inline(always)]
    pub fn hash32(&self, i: usize, key: u64) -> u32 {
        murmur3_u64(key, self.seeds32[i])
    }

    /// 64-bit hash of `key` under function `i` (xxHash-style avalanche).
    #[inline(always)]
    pub fn hash64(&self, i: usize, key: u64) -> u64 {
        xxmix64(key, self.seeds64[i])
    }

    /// Hash of `key` under function `i`, reduced to a bucket in `0..m`.
    ///
    /// Uses the Lemire multiply-shift reduction, which is faster than `%`
    /// and unbiased enough for Bloom-filter bit placement.
    #[inline(always)]
    pub fn bucket(&self, i: usize, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        (((self.hash32(i, key) as u64) * (m as u64)) >> 32) as usize
    }

    /// The shared batched-evaluation kernel: hashes `key` under every
    /// function, invoking `sink(i, hash32(i, key))` in index order. The
    /// key-side Murmur mixing ([`premix32`]) is computed once and the
    /// four-wide unroll keeps the independent per-seed chains pipelined.
    /// Every public batched entry point (`hashes_into`, `buckets_into`,
    /// `for_each_bucket`) is a thin wrapper over this one loop, so the
    /// `^ 8` length-finalizer and the unroll stay bit-identical to
    /// [`HashFamily::hash32`] by construction.
    #[inline(always)]
    fn for_each_hash<S: FnMut(usize, u32)>(&self, key: u64, mut sink: S) {
        let p0 = premix32(key as u32);
        let p1 = premix32((key >> 32) as u32);
        let eval = |seed: u32| fmix32(mix_premixed(mix_premixed(seed, p0), p1) ^ 8);
        let seeds = &self.seeds32[..];
        let k = seeds.len();
        let mut i = 0;
        // Four independent hash chains per iteration: no loop-carried
        // dependency, so the multiplies overlap in the pipeline.
        while i + 4 <= k {
            sink(i, eval(seeds[i]));
            sink(i + 1, eval(seeds[i + 1]));
            sink(i + 2, eval(seeds[i + 2]));
            sink(i + 3, eval(seeds[i + 3]));
            i += 4;
        }
        while i < k {
            sink(i, eval(seeds[i]));
            i += 1;
        }
    }

    /// Batched 32-bit hashes: fills `out[i] = hash32(i, key)` for every
    /// function of the family in one call. `out.len()` must equal
    /// [`HashFamily::len`].
    ///
    /// Bit-identical to `b` separate [`HashFamily::hash32`] calls, but the
    /// key-side mixing is hoisted and the chains unrolled — the
    /// sketch-construction hot loop of Table V spends its time here.
    #[inline]
    pub fn hashes_into(&self, key: u64, out: &mut [u32]) {
        assert_eq!(
            out.len(),
            self.len(),
            "output buffer must hold one hash per function"
        );
        self.for_each_hash(key, |i, h| out[i] = h);
    }

    /// Batched bucket reduction: fills `out[i] = bucket(i, key, m)` for
    /// every function in one call (Lemire reduction fused into the batched
    /// hash loop — a single pass over the family). Buckets are returned as
    /// `u32`, which bounds `m` at `u32::MAX` bits — a 512 MiB Bloom filter,
    /// far beyond any per-neighborhood budget.
    #[inline]
    pub fn buckets_into(&self, key: u64, m: usize, out: &mut [u32]) {
        debug_assert!(m > 0);
        assert_eq!(
            out.len(),
            self.len(),
            "output buffer must hold one hash per function"
        );
        assert!(m <= u32::MAX as usize, "bucket space exceeds u32 range");
        let m = m as u64;
        self.for_each_hash(key, |i, h| out[i] = ((h as u64 * m) >> 32) as u32);
    }

    /// Streaming variant of [`HashFamily::buckets_into`]: invokes `f` with
    /// each of the `len()` bucket indices of `key` without materializing a
    /// buffer. This is the insertion hot path — the premix hoisting of the
    /// batched kernel with zero extra stores.
    #[inline]
    pub fn for_each_bucket<F: FnMut(u32)>(&self, key: u64, m: usize, mut f: F) {
        debug_assert!(m > 0);
        assert!(m <= u32::MAX as usize, "bucket space exceeds u32 range");
        let m = m as u64;
        self.for_each_hash(key, |_, h| f(((h as u64 * m) >> 32) as u32));
    }

    /// Hash of `key` under function `i` mapped to the half-open unit
    /// interval `(0, 1]`, as KMV requires (§IX: `h : X → (0; 1]`).
    #[inline(always)]
    pub fn unit(&self, i: usize, key: u64) -> f64 {
        // 2^-64 * (h + 1) lies in (0, 1]; h==u64::MAX maps to exactly 1.0.
        let h = self.hash64(i, key);
        (h as f64 + 1.0) * (1.0 / 18_446_744_073_709_551_616.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_size() {
        let f = HashFamily::new(5, 42);
        assert_eq!(f.len(), 5);
        assert!(!f.is_empty());
        assert!(HashFamily::new(0, 1).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = HashFamily::new(4, 7);
        let b = HashFamily::new(4, 7);
        for i in 0..4 {
            assert_eq!(a.hash32(i, 999), b.hash32(i, 999));
            assert_eq!(a.hash64(i, 999), b.hash64(i, 999));
        }
    }

    #[test]
    fn prefix_property_is_stable() {
        // Families of different sizes over one master seed must share
        // their function prefix — the stratified MinHash cross-width
        // comparison (first min(k) slots) is only exact because of this.
        for (k1, k2) in [(1usize, 4usize), (4, 16), (7, 64), (16, 17)] {
            let small = HashFamily::new(k1, 1234);
            let large = HashFamily::new(k2, 1234);
            for i in 0..k1 {
                for key in [0u64, 1, 999, u64::MAX] {
                    assert_eq!(small.hash32(i, key), large.hash32(i, key), "i={i}");
                    assert_eq!(small.hash64(i, key), large.hash64(i, key), "i={i}");
                }
            }
        }
    }

    #[test]
    fn different_functions_differ() {
        let f = HashFamily::new(8, 3);
        let outs: Vec<u32> = (0..8).map(|i| f.hash32(i, 123_456)).collect();
        let uniq: std::collections::HashSet<_> = outs.iter().collect();
        assert!(uniq.len() >= 7, "functions should rarely collide: {outs:?}");
    }

    #[test]
    fn bucket_in_range_and_roughly_uniform() {
        let f = HashFamily::new(1, 11);
        let m = 64;
        let mut counts = vec![0u32; m];
        let trials = 64_000;
        for key in 0..trials {
            let bkt = f.bucket(0, key, m);
            assert!(bkt < m);
            counts[bkt] += 1;
        }
        let expect = trials as f64 / m as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > 0.5 * expect && (c as f64) < 1.5 * expect,
                "bucket {b} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn batched_hashes_match_scalar_path() {
        // Exercise every unroll remainder length (0..=3 leftover chains).
        for k in [1usize, 2, 3, 4, 5, 7, 8, 11] {
            let f = HashFamily::new(k, 77);
            let mut hashes = vec![0u32; k];
            let mut buckets = vec![0u32; k];
            for key in [0u64, 1, 12345, u64::MAX, 0xdead_beef] {
                f.hashes_into(key, &mut hashes);
                f.buckets_into(key, 1000, &mut buckets);
                let mut streamed = Vec::with_capacity(k);
                f.for_each_bucket(key, 1000, |pos| streamed.push(pos));
                assert_eq!(streamed, buckets, "k={k} key={key:#x}");
                for i in 0..k {
                    assert_eq!(hashes[i], f.hash32(i, key), "k={k} i={i} key={key:#x}");
                    assert_eq!(
                        buckets[i] as usize,
                        f.bucket(i, key, 1000),
                        "k={k} i={i} key={key:#x}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one hash per function")]
    fn batched_hashes_reject_wrong_buffer_size() {
        let f = HashFamily::new(3, 1);
        let mut out = vec![0u32; 2];
        f.hashes_into(9, &mut out);
    }

    #[test]
    fn unit_interval_open_closed() {
        let f = HashFamily::new(2, 99);
        for key in 0..10_000u64 {
            for i in 0..2 {
                let u = f.unit(i, key);
                assert!(u > 0.0 && u <= 1.0, "u={u}");
            }
        }
    }

    #[test]
    fn unit_mean_is_about_half() {
        let f = HashFamily::new(1, 5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|k| f.unit(0, k)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
