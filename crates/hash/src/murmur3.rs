//! MurmurHash3 (Austin Appleby, public domain), reimplemented from the
//! reference `MurmurHash3_x86_32` and the 64-bit finalizer of
//! `MurmurHash3_x64_128`.
//!
//! Graph workloads hash fixed-width vertex IDs, so besides the general
//! byte-slice routine we provide branch-free single-word fast paths that are
//! bit-identical to hashing the ID's 4/8 little-endian bytes.

const C1: u32 = 0xcc9e_2d51;
const C2: u32 = 0x1b87_3593;

/// MurmurHash3 32-bit finalizer ("fmix32"): a full avalanche for one word.
#[inline(always)]
pub fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// MurmurHash3 64-bit finalizer ("fmix64") from the x64_128 variant.
#[inline(always)]
pub fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

#[inline(always)]
fn body_round(h: u32, k: u32) -> u32 {
    mix_premixed(h, premix32(k))
}

/// The key-side half of a MurmurHash3 body round: `((k·C1) rol 15)·C2`.
///
/// Depends only on the key word, not on the running state — so when one key
/// is hashed under `b` different seeds (Bloom insertion, MinHash signatures)
/// it can be computed **once** and shared across all `b` evaluations. This
/// is what makes the batched [`crate::HashFamily::buckets_into`] kernel
/// cheaper than `b` independent `murmur3_u64` calls while staying
/// bit-identical to them.
#[inline(always)]
pub fn premix32(k: u32) -> u32 {
    k.wrapping_mul(C1).rotate_left(15).wrapping_mul(C2)
}

/// The state-side half of a body round: folds a [`premix32`]-ed key word
/// into the running state.
#[inline(always)]
pub fn mix_premixed(mut h: u32, kp: u32) -> u32 {
    h ^= kp;
    h = h.rotate_left(13);
    h.wrapping_mul(5).wrapping_add(0xe654_6b64)
}

/// `MurmurHash3_x86_32` over an arbitrary byte slice.
///
/// Matches the reference implementation for every input length (verified by
/// test vectors below).
pub fn murmur3_bytes(data: &[u8], seed: u32) -> u32 {
    let mut h = seed;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        h = body_round(h, k);
    }
    let tail = chunks.remainder();
    let mut k: u32 = 0;
    if !tail.is_empty() {
        for (i, &b) in tail.iter().enumerate() {
            k ^= (b as u32) << (8 * i);
        }
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
    }
    h ^= data.len() as u32;
    fmix32(h)
}

/// `MurmurHash3_x86_32` of a `u32` key — bit-identical to
/// `murmur3_bytes(&key.to_le_bytes(), seed)` but with the loop unrolled away.
#[inline(always)]
pub fn murmur3_u32(key: u32, seed: u32) -> u32 {
    let h = body_round(seed, key);
    fmix32(h ^ 4)
}

/// `MurmurHash3_x86_32` of a `u64` key — bit-identical to hashing its 8
/// little-endian bytes.
#[inline(always)]
pub fn murmur3_u64(key: u64, seed: u32) -> u32 {
    let mut h = body_round(seed, key as u32);
    h = body_round(h, (key >> 32) as u32);
    fmix32(h ^ 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors computed with the canonical C++ MurmurHash3_x86_32.
    #[test]
    fn reference_vectors() {
        assert_eq!(murmur3_bytes(b"", 0), 0);
        assert_eq!(murmur3_bytes(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_bytes(b"", 0xffff_ffff), 0x81f1_6f39);
        assert_eq!(murmur3_bytes(&[0xff, 0xff, 0xff, 0xff], 0), 0x7629_3b50);
        assert_eq!(murmur3_bytes(&[0x21, 0x43, 0x65, 0x87], 0), 0xf55b_516b);
        assert_eq!(
            murmur3_bytes(&[0x21, 0x43, 0x65, 0x87], 0x5082edee),
            0x2362_f9de
        );
        assert_eq!(murmur3_bytes(&[0x21, 0x43, 0x65], 0), 0x7e4a_8634);
        assert_eq!(murmur3_bytes(&[0x21, 0x43], 0), 0xa0f7_b07a);
        assert_eq!(murmur3_bytes(&[0x21], 0), 0x7266_1cf4);
    }

    #[test]
    fn u32_fast_path_matches_bytes() {
        for key in [0u32, 1, 2, 0xdead_beef, u32::MAX, 12345, 0x8000_0000] {
            for seed in [0u32, 1, 42, 0xffff_ffff] {
                assert_eq!(
                    murmur3_u32(key, seed),
                    murmur3_bytes(&key.to_le_bytes(), seed),
                    "key={key:#x} seed={seed:#x}"
                );
            }
        }
    }

    #[test]
    fn u64_fast_path_matches_bytes() {
        for key in [0u64, 1, u64::MAX, 0xdead_beef_cafe_babe, 1 << 33] {
            for seed in [0u32, 7, 0x9747_b28c] {
                assert_eq!(
                    murmur3_u64(key, seed),
                    murmur3_bytes(&key.to_le_bytes(), seed),
                    "key={key:#x} seed={seed:#x}"
                );
            }
        }
    }

    #[test]
    fn premixed_path_is_bit_identical() {
        // The hoisted premix32/mix_premixed decomposition must reproduce
        // murmur3_u64 exactly for every (key, seed).
        for key in [0u64, 1, u64::MAX, 0xdead_beef_cafe_babe, 1 << 33, 42] {
            let p0 = premix32(key as u32);
            let p1 = premix32((key >> 32) as u32);
            for seed in [0u32, 7, 0x9747_b28c, u32::MAX] {
                let via_premix = fmix32(mix_premixed(mix_premixed(seed, p0), p1) ^ 8);
                assert_eq!(
                    via_premix,
                    murmur3_u64(key, seed),
                    "key={key:#x} seed={seed:#x}"
                );
            }
        }
    }

    #[test]
    fn fmix32_is_a_bijection_on_samples() {
        // fmix32 is invertible; spot-check injectivity on a dense sample.
        let mut seen = std::collections::HashSet::new();
        for x in 0u32..100_000 {
            assert!(seen.insert(fmix32(x)));
        }
    }

    #[test]
    fn fmix64_avalanche_smoke() {
        // Flipping one input bit should flip ~32 of 64 output bits.
        let base = fmix64(0x0123_4567_89ab_cdef);
        let mut total = 0u32;
        for bit in 0..64 {
            let flipped = fmix64(0x0123_4567_89ab_cdef ^ (1u64 << bit));
            total += (base ^ flipped).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((avg - 32.0).abs() < 4.0, "poor avalanche: {avg}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a: Vec<u32> = (0..1000).map(|i| murmur3_u32(i, 1)).collect();
        let b: Vec<u32> = (0..1000).map(|i| murmur3_u32(i, 2)).collect();
        let equal = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(
            equal <= 2,
            "seeds should give distinct streams ({equal} collisions)"
        );
    }
}
