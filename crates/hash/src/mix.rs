//! Auxiliary integer mixers: seed derivation and fast 64-bit avalanches.

/// SplitMix64 step (Steele, Lea & Flood; also Vigna's `splitmix64`):
/// advances `state` by the golden-gamma and returns a fully mixed output.
///
/// Used to derive the per-function seeds of a [`crate::HashFamily`] from one
/// master seed, so that families built from consecutive master seeds are
/// still decorrelated.
#[inline(always)]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateless variant: the SplitMix64 output for a given input word.
#[inline(always)]
pub fn splitmix64_at(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// xxHash64-style avalanche of a single 64-bit word combined with a seed.
///
/// Cheaper than a full xxHash64 over 8 bytes but with the same final
/// avalanche quality; used where a second, structurally different 64-bit
/// hash family is needed (e.g. HyperLogLog, which must not reuse the
/// MinHash bits).
#[inline(always)]
pub fn xxmix64(key: u64, seed: u64) -> u64 {
    const PRIME64_1: u64 = 0x9e37_79b1_85eb_ca87;
    const PRIME64_2: u64 = 0xc2b2_ae3d_27d4_eb4f;
    const PRIME64_3: u64 = 0x1656_67b1_9e37_79f9;
    let mut h = seed
        .wrapping_add(PRIME64_1)
        .wrapping_add(key.wrapping_mul(PRIME64_2));
    h = h.rotate_left(31).wrapping_mul(PRIME64_1);
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_sequence() {
        // First outputs for state starting at 0 (published reference values).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut s), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn splitmix_at_is_stateless() {
        assert_eq!(splitmix64_at(42), splitmix64_at(42));
        assert_ne!(splitmix64_at(42), splitmix64_at(43));
    }

    #[test]
    fn xxmix_distinct_seeds_distinct_streams() {
        let collide = (0u64..1000)
            .filter(|&i| xxmix64(i, 1) == xxmix64(i, 2))
            .count();
        assert!(collide <= 1);
    }

    #[test]
    fn xxmix_avalanche() {
        let base = xxmix64(0xabcd_ef01_2345_6789, 7);
        let mut total = 0u32;
        for bit in 0..64 {
            total += (base ^ xxmix64(0xabcd_ef01_2345_6789 ^ (1 << bit), 7)).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((avg - 32.0).abs() < 4.0, "poor avalanche: {avg}");
    }

    #[test]
    fn mixers_cover_high_and_low_bits() {
        // Make sure both halves of the output vary over small inputs.
        let mut hi = 0u64;
        let mut lo = 0u64;
        for i in 0..64u64 {
            hi |= splitmix64_at(i) >> 32;
            lo |= splitmix64_at(i) & 0xffff_ffff;
        }
        assert!(hi.count_ones() > 20);
        assert!(lo.count_ones() > 20);
    }
}
