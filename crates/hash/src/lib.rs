//! # pg-hash — hashing substrate
//!
//! The paper builds every probabilistic set representation on top of
//! MurmurHash3 (§VI-C: *"We use the MurmurHash3 hash function, well-known
//! for its speed and simplicity"*), with `b` (Bloom filter) or `k` (MinHash)
//! independent hash functions obtained by seeding. This crate provides:
//!
//! * [`murmur3`] — faithful MurmurHash3 implementations: the 32-bit x86
//!   variant for byte slices, a specialized fast path for `u32`/`u64` keys
//!   (the vertex-ID case that dominates graph workloads), and the canonical
//!   finalizers ([`murmur3::fmix32`], [`murmur3::fmix64`]).
//! * [`mix`] — auxiliary integer mixers: [`mix::splitmix64`] (seed
//!   derivation) and an xxHash64-style avalanche ([`mix::xxmix64`]).
//! * [`family`] — [`family::HashFamily`]: `k` seeded, mutually independent
//!   hash functions over vertex IDs, plus a unit-interval view used by KMV.
//!
//! All functions are pure, allocation-free, and `#[inline]`-friendly — they
//! sit on the innermost loops of sketch construction (Table V of the paper).

pub mod family;
pub mod mix;
pub mod murmur3;
pub mod xxhash;

pub use family::HashFamily;
pub use mix::{splitmix64, splitmix64_at, xxmix64};
pub use murmur3::{fmix32, fmix64, murmur3_bytes, murmur3_u32, murmur3_u64};
pub use xxhash::xxh64;
