//! XXH64 over byte slices — the checksum under snapshot sections.
//!
//! The snapshot format (`probgraph::snapshot`) needs a fast, well-known
//! checksum over multi-megabyte word arrays. This is the canonical XXH64
//! algorithm (Collet), implemented directly so the workspace stays
//! dependency-free; the test vectors below pin it to the reference
//! implementation. Throughput is one 4-lane multiply-rotate chain per 32
//! input bytes — far faster than the load path needs.

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline(always)]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline(always)]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline(always)]
fn read_u64(b: &[u8]) -> u64 {
    // Caller guarantees 8 bytes; the slice pattern keeps this panic-free
    // in the eyes of the optimizer as well.
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[..8]);
    u64::from_le_bytes(buf)
}

#[inline(always)]
fn read_u32(b: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&b[..4]);
    u32::from_le_bytes(buf)
}

/// XXH64 of `data` under `seed` — bit-identical to the reference
/// implementation (see the module tests for the canonical vectors).
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut h = if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(P5)
    };
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= (read_u32(rest) as u64).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= (b as u64).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_vectors() {
        // Reference vectors from the xxHash specification / xxhsum.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        // 39 bytes: exercises the 32-byte stripe loop plus every tail arm.
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition", 0),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn seed_and_length_sensitivity() {
        let data: Vec<u8> = (0..100u8).collect();
        assert_ne!(xxh64(&data, 0), xxh64(&data, 1));
        for cut in [0, 1, 3, 4, 7, 8, 31, 32, 33, 63, 64, 99] {
            for flip in 0..cut {
                let mut d = data[..cut].to_vec();
                d[flip] ^= 1;
                assert_ne!(
                    xxh64(&d, 7),
                    xxh64(&data[..cut], 7),
                    "cut={cut} flip={flip}"
                );
            }
        }
    }
}
