//! Edge-list I/O.
//!
//! The paper loads graphs with the GAP Benchmark Suite loader; the common
//! interchange format there is a whitespace-separated edge list with `#`
//! comments (the SNAP convention). We implement reading and writing of that
//! format so users can run the library on real downloaded datasets.

use crate::csr::{CsrGraph, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a SNAP-style edge list: one `u v` pair per line, `#` comments and
/// blank lines ignored. Vertex IDs may be arbitrary `u32`s; `n` is taken as
/// `max id + 1`.
pub fn read_edge_list<R: Read>(reader: R) -> std::io::Result<CsrGraph> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut line = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut it = body.split_whitespace();
        let parse = |tok: Option<&str>| -> std::io::Result<VertexId> {
            tok.and_then(|t| t.parse::<VertexId>().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {lineno}: expected two u32 vertex ids, got {body:?}"),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u as u64).max(v as u64);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Reads an edge-list file from disk.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> std::io::Result<CsrGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a graph as an edge list (one `u v` line per undirected edge).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# probgraph edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes an edge-list file to disk.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> std::io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# header\n\n0 1\n1 2 # trailing comment\n   2   0  \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("# nothing here\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = gen::kronecker(8, 4, 77);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(buf.as_slice()).unwrap();
        // Isolated trailing vertices may shrink n; compare edges instead.
        assert_eq!(g.edge_list(), h.edge_list());
    }

    #[test]
    fn file_roundtrip() {
        let g = gen::complete(6);
        let dir = std::env::temp_dir().join("pg_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("k6.el");
        write_edge_list_file(&g, &path).unwrap();
        let h = read_edge_list_file(&path).unwrap();
        assert_eq!(g, h);
        let _ = std::fs::remove_file(path);
    }
}
