//! Edge-list I/O.
//!
//! The paper loads graphs with the GAP Benchmark Suite loader; the common
//! interchange format there is a whitespace-separated edge list with `#`
//! comments (the SNAP convention). We implement reading and writing of that
//! format so users can run the library on real downloaded datasets.
//!
//! Readers are hardened against hostile input: a malformed line, and a
//! vertex id that would blow `n = max id + 1` up into an address-space-
//! sized CSR (one stray `4294967295` in a text file means a 16 GB offsets
//! array), are both typed [`EdgeListError`]s with the offending line
//! number — never a panic, never an unchecked giant allocation. The cap is
//! [`DEFAULT_MAX_VERTICES`] unless [`read_edge_list_capped`] overrides it.

use crate::csr::{CsrGraph, VertexId};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Default bound on `max id + 1` accepted by [`read_edge_list`]:
/// 2²⁷ ≈ 134M vertices (a ~0.5 GB offsets array) — far above every
/// benchmark graph, far below an allocation that takes a machine down.
pub const DEFAULT_MAX_VERTICES: usize = 1 << 27;

/// Everything that can go wrong reading an edge list, with the line it
/// went wrong on.
#[derive(Debug)]
pub enum EdgeListError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A non-comment line did not hold two `u32` vertex ids.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line body.
        content: String,
    },
    /// A vertex id implies more vertices than the configured cap — the
    /// file would expand into an address-space-sized CSR.
    TooManyVertices {
        /// The id that broke the cap.
        max_id: u64,
        /// The configured vertex cap.
        cap: usize,
        /// 1-based line number of the offending edge.
        line: usize,
    },
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "edge list I/O failed: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(
                    f,
                    "line {line}: expected two u32 vertex ids, got {content:?}"
                )
            }
            EdgeListError::TooManyVertices { max_id, cap, line } => write!(
                f,
                "line {line}: vertex id {max_id} implies {} vertices, above the cap of {cap} \
                 (raise it with read_edge_list_capped if intentional)",
                max_id + 1
            ),
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses a SNAP-style edge list: one `u v` pair per line, `#` comments and
/// blank lines ignored. Vertex IDs may be arbitrary `u32`s up to
/// [`DEFAULT_MAX_VERTICES`]; `n` is taken as `max id + 1`.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, EdgeListError> {
    read_edge_list_capped(reader, DEFAULT_MAX_VERTICES)
}

/// [`read_edge_list`] with an explicit vertex cap — the id bound a caller
/// who actually holds a billion-vertex graph raises deliberately, instead
/// of every caller inheriting unbounded allocation from any typo'd id.
pub fn read_edge_list_capped<R: Read>(
    reader: R,
    max_vertices: usize,
) -> Result<CsrGraph, EdgeListError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut line = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut it = body.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<VertexId, EdgeListError> {
            tok.and_then(|t| t.parse::<VertexId>().ok())
                .ok_or(EdgeListError::Parse {
                    line: lineno,
                    content: body.to_string(),
                })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let line_max = u.max(v) as u64;
        if line_max + 1 > max_vertices as u64 {
            return Err(EdgeListError::TooManyVertices {
                max_id: line_max,
                cap: max_vertices,
                line: lineno,
            });
        }
        max_id = max_id.max(line_max);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Reads an edge-list file from disk, under the default vertex cap.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, EdgeListError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a graph as an edge list (one `u v` line per undirected edge).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# probgraph edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes an edge-list file to disk.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> std::io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# header\n\n0 1\n1 2 # trailing comment\n   2   0  \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let err = read_edge_list("0 1\n0 x\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, EdgeListError::Parse { line: 2, .. }),
            "{err:?}"
        );
        assert!(read_edge_list("42\n".as_bytes()).is_err());
        // Negative ids and overflowing literals are parse errors too.
        assert!(matches!(
            read_edge_list("-1 2\n".as_bytes()),
            Err(EdgeListError::Parse { .. })
        ));
        assert!(matches!(
            read_edge_list("0 99999999999\n".as_bytes()),
            Err(EdgeListError::Parse { .. })
        ));
    }

    #[test]
    fn huge_ids_hit_the_cap_not_the_allocator() {
        // u32::MAX parses fine but implies 2³² vertices — a 16 GB offsets
        // array under the old behavior. It must be a typed refusal.
        let text = format!("0 1\n5 {}\n", u32::MAX);
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            EdgeListError::TooManyVertices { max_id, cap, line } => {
                assert_eq!(max_id, u32::MAX as u64);
                assert_eq!(cap, DEFAULT_MAX_VERTICES);
                assert_eq!(line, 2);
            }
            other => panic!("expected TooManyVertices, got {other:?}"),
        }
    }

    #[test]
    fn cap_is_a_boundary_not_a_fence_post() {
        // max id == cap - 1 is exactly cap vertices: allowed.
        let ok = read_edge_list_capped("0 9\n".as_bytes(), 10).unwrap();
        assert_eq!(ok.num_vertices(), 10);
        // max id == cap is cap + 1 vertices: refused.
        assert!(matches!(
            read_edge_list_capped("0 10\n".as_bytes(), 10),
            Err(EdgeListError::TooManyVertices { max_id: 10, .. })
        ));
        // The default reader enforces DEFAULT_MAX_VERTICES.
        let text = format!("0 {}\n", DEFAULT_MAX_VERTICES);
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(EdgeListError::TooManyVertices { .. })
        ));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("# nothing here\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_file("/nonexistent/pg/evenless.el").unwrap_err();
        assert!(matches!(err, EdgeListError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = gen::kronecker(8, 4, 77);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(buf.as_slice()).unwrap();
        // Isolated trailing vertices may shrink n; compare edges instead.
        assert_eq!(g.edge_list(), h.edge_list());
    }

    #[test]
    fn file_roundtrip() {
        let g = gen::complete(6);
        let dir = std::env::temp_dir().join("pg_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("k6.el");
        write_edge_list_file(&g, &path).unwrap();
        let h = read_edge_list_file(&path).unwrap();
        assert_eq!(g, h);
        let _ = std::fs::remove_file(path);
    }
}
