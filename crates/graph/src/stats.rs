//! Summary statistics of a graph, used by the benchmark harness to label
//! dataset rows exactly as the paper's Table VIII does.

use crate::csr::{CsrGraph, VertexId};
use std::fmt;

/// Basic structural statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count `n`.
    pub n: usize,
    /// Undirected edge count `m`.
    pub m: usize,
    /// Maximum degree (the paper's `d` / Δ).
    pub max_degree: usize,
    /// Average degree `d̄ = 2m/n`.
    pub avg_degree: f64,
    /// Degree skew `Δ / d̄` — the load-imbalance proxy from Fig. 1 panel 5.
    pub skew: f64,
    /// Bytes used by the CSR arrays.
    pub memory_bytes: usize,
}

impl GraphStats {
    /// Computes all statistics in one pass.
    pub fn compute(g: &CsrGraph) -> Self {
        let max_degree = g.max_degree();
        let avg_degree = g.avg_degree();
        GraphStats {
            n: g.num_vertices(),
            m: g.num_edges(),
            max_degree,
            avg_degree,
            skew: if avg_degree > 0.0 {
                max_degree as f64 / avg_degree
            } else {
                0.0
            },
            memory_bytes: g.memory_bytes(),
        }
    }

    /// Histogram of degrees (index = degree), for degree-distribution plots.
    pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
        let mut hist = vec![0usize; g.max_degree() + 1];
        for v in 0..g.num_vertices() {
            hist[g.degree(v as VertexId)] += 1;
        }
        hist
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} m={} dmax={} davg={:.2} skew={:.2} mem={}B",
            self.n, self.m, self.max_degree, self.avg_degree, self.skew, self.memory_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_complete_graph() {
        let g = gen::complete(10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 45);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.avg_degree, 9.0);
        assert!((s.skew - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_star_show_skew() {
        let g = gen::star(101);
        let s = GraphStats::compute(&g);
        assert_eq!(s.max_degree, 100);
        assert!(s.skew > 25.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = gen::kronecker(8, 4, 3);
        let h = GraphStats::degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn display_is_readable() {
        let s = GraphStats::compute(&gen::complete(4));
        let txt = format!("{s}");
        assert!(txt.contains("n=4"));
        assert!(txt.contains("m=6"));
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::CsrGraph::from_edges(0, &[]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 0);
        assert_eq!(s.skew, 0.0);
    }
}
