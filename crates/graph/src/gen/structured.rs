//! Deterministic structured graphs with closed-form pattern counts.
//!
//! These are the ground-truth workhorses of the test suite: a complete
//! graph K_n has exactly `C(n,3)` triangles and `C(n,4)` 4-cliques, a grid
//! has none, a complete bipartite graph has none but many 4-cycles, etc.

use crate::csr::{CsrGraph, VertexId};

/// Complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Star with center 0 and `n - 1` leaves.
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<_> = (1..n as VertexId).map(|v| (0, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// Simple path `0 — 1 — … — (n-1)`.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<_> = (1..n as VertexId).map(|v| (v - 1, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// Cycle over `n ≥ 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<_> = (1..n as VertexId).map(|v| (v - 1, v)).collect();
    edges.push((n as VertexId - 1, 0));
    CsrGraph::from_edges(n, &edges)
}

/// `rows × cols` grid (4-neighborhood). Triangle-free.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    CsrGraph::from_edges(rows * cols, &edges)
}

/// Complete bipartite graph `K_{a,b}` (parts `0..a` and `a..a+b`).
/// Triangle-free.
pub fn complete_bipartite(a: usize, b: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as VertexId {
        for v in 0..b as VertexId {
            edges.push((u, a as VertexId + v));
        }
    }
    CsrGraph::from_edges(a + b, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
        assert!(g.has_edge(0, 5));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(path(10).num_edges(), 9);
        let c = cycle(10);
        assert_eq!(c.num_edges(), 10);
        assert!(c.has_edge(9, 0));
        assert!((0..10).all(|v| c.degree(v) == 2));
    }

    #[test]
    fn grid_degrees() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_edges(), 12);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 3));
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(6), 3);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(complete(1).num_edges(), 0);
        assert_eq!(star(1).num_edges(), 0);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(grid(1, 1).num_edges(), 0);
    }
}
