//! Kronecker / R-MAT graph generator.
//!
//! The paper's synthetic inputs are Kronecker graphs [119] with power-law
//! degree distributions. We implement the standard stochastic-Kronecker
//! (R-MAT) edge sampler with the Graph500 initiator matrix
//! `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`: each of the `scale` bit
//! positions of an edge's endpoints is drawn by descending into one of the
//! four quadrants with those probabilities. This yields the heavy skew the
//! paper exploits in its load-balancing arguments (Fig. 1, panel 5).

use crate::csr::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Initiator probabilities of the 2×2 stochastic Kronecker matrix.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability (hub ↔ hub).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// Graph500 reference parameters (d = 1 − a − b − c = 0.05).
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };
}

/// Generates a Kronecker graph with `2^scale` vertices and roughly
/// `edge_factor · 2^scale` undirected edges (duplicates and self loops are
/// removed, so the realized count is somewhat lower, exactly as with the
/// reference Graph500 generator).
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    kronecker_rmat(scale, edge_factor, RmatParams::GRAPH500, seed)
}

/// [`kronecker`] with explicit initiator parameters.
pub fn kronecker_rmat(scale: u32, edge_factor: usize, p: RmatParams, seed: u64) -> CsrGraph {
    assert!(scale < 31, "scale {scale} too large for u32 vertex ids");
    let n = 1usize << scale;
    let m_target = n.saturating_mul(edge_factor);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4b52_4f4e);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m_target);
    let ab = p.a + p.b;
    let abc = ab + p.c;
    for _ in 0..m_target {
        let mut u: u32 = 0;
        let mut v: u32 = 0;
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < p.a {
                // top-left: no bits set
            } else if r < ab {
                v |= 1;
            } else if r < abc {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_close_to_target() {
        let g = kronecker(10, 8, 1);
        assert_eq!(g.num_vertices(), 1024);
        // Duplicates/self loops remove some edges but most survive.
        assert!(g.num_edges() > 4 * 1024, "m={}", g.num_edges());
        assert!(g.num_edges() <= 8 * 1024);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(kronecker(8, 4, 7), kronecker(8, 4, 7));
        assert_ne!(kronecker(8, 4, 7), kronecker(8, 4, 8));
    }

    #[test]
    fn skewed_degree_distribution() {
        // Kronecker graphs are heavy-tailed: max degree far above average.
        let g = kronecker(12, 16, 3);
        let skew = g.max_degree() as f64 / g.avg_degree();
        assert!(skew > 5.0, "expected heavy tail, skew={skew}");
    }

    #[test]
    fn uniform_initiator_is_roughly_erdos_renyi() {
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = kronecker_rmat(10, 8, p, 5);
        let skew = g.max_degree() as f64 / g.avg_degree();
        assert!(
            skew < 4.0,
            "uniform initiator should be balanced, skew={skew}"
        );
    }
}
