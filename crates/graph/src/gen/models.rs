//! Additional network models: Barabási–Albert preferential attachment,
//! Watts–Strogatz small world, and planted-partition community graphs.
//!
//! These complement the Kronecker/Chung–Lu generators: BA gives an
//! alternative heavy-tail mechanism, WS gives high clustering coefficients
//! at low degree (a stress case for triangle-based methods), and the
//! planted partition provides *ground-truth communities* for evaluating
//! Jarvis–Patrick clustering end to end.

use crate::csr::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m_attach` existing vertices chosen
/// proportionally to degree (implemented with the standard repeated-endpoint
/// trick: sample uniformly from the edge-endpoint list).
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1);
    assert!(n > m_attach, "need n > m_attach");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA_BA);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * m_attach);
    // Endpoint pool: each edge contributes both endpoints, so uniform
    // sampling from it is degree-proportional sampling.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique over the first m_attach + 1 vertices.
    for a in 0..=(m_attach as VertexId) {
        for b in (a + 1)..=(m_attach as VertexId) {
            edges.push((a, b));
            pool.push(a);
            pool.push(b);
        }
    }
    for v in (m_attach + 1)..n {
        // Sorted target list keeps the pool order (and thus the whole
        // generator) deterministic; a HashSet would iterate in random order.
        let mut targets: Vec<VertexId> = Vec::with_capacity(m_attach);
        while targets.len() < m_attach {
            let t = pool[rng.gen_range(0..pool.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        targets.sort_unstable();
        for &t in &targets {
            edges.push((v as VertexId, t));
            pool.push(v as VertexId);
            pool.push(t);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Watts–Strogatz small world: a ring lattice where each vertex connects to
/// its `k_half` neighbors on each side, with every edge rewired to a random
/// endpoint with probability `beta`.
pub fn watts_strogatz(n: usize, k_half: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(n > 2 * k_half, "ring needs n > 2·k_half");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3357);
    let mut edges = Vec::with_capacity(n * k_half);
    for v in 0..n {
        for off in 1..=k_half {
            let u = (v + off) % n;
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint uniformly (avoiding self loops;
                // duplicate edges are dropped by the CSR builder).
                let mut w = rng.gen_range(0..n);
                while w == v {
                    w = rng.gen_range(0..n);
                }
                edges.push((v as VertexId, w as VertexId));
            } else {
                edges.push((v as VertexId, u as VertexId));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// A planted-partition graph with `communities` equal-size groups:
/// within-group pairs are edges with probability `p_in`, cross-group pairs
/// with `p_out`. Returns the graph and the ground-truth community label of
/// every vertex.
pub fn planted_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> (CsrGraph, Vec<u32>) {
    assert!(communities >= 1 && n >= communities);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9127);
    let labels: Vec<u32> = (0..n).map(|v| (v % communities) as u32).collect();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if labels[u] == labels[v] { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    (CsrGraph::from_edges(n, &edges), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_size_and_tail() {
        let g = barabasi_albert(2000, 4, 7);
        assert_eq!(g.num_vertices(), 2000);
        // m ≈ n·m_attach (seed clique adds a few).
        assert!(
            (g.num_edges() as f64 - 8000.0).abs() < 500.0,
            "m={}",
            g.num_edges()
        );
        // Preferential attachment: heavy tail.
        let skew = g.max_degree() as f64 / g.avg_degree();
        assert!(skew > 5.0, "skew={skew}");
    }

    #[test]
    fn ba_early_vertices_are_hubs() {
        let g = barabasi_albert(3000, 3, 3);
        let early_max = (0..10).map(|v| g.degree(v)).max().unwrap();
        let late_max = (2900..3000).map(|v| g.degree(v as VertexId)).max().unwrap();
        assert!(early_max > late_max);
    }

    #[test]
    fn ws_zero_beta_is_ring_lattice() {
        let g = watts_strogatz(50, 2, 0.0, 1);
        assert_eq!(g.num_edges(), 100);
        assert!((0..50u32).all(|v| g.degree(v) == 4));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn ws_lattice_has_high_local_clustering() {
        // Ring lattice with k_half=3: adjacent vertices share neighbors.
        let g = watts_strogatz(200, 3, 0.0, 1);
        let (u, v) = (10u32, 11u32);
        let shared = g
            .neighbors(u)
            .iter()
            .filter(|x| g.neighbors(v).contains(x))
            .count();
        assert!(shared >= 2, "shared={shared}");
    }

    #[test]
    fn ws_rewiring_keeps_edge_budget_close() {
        let g = watts_strogatz(500, 4, 0.3, 9);
        // Rewiring can only lose edges to duplicate collapse.
        assert!(g.num_edges() <= 2000);
        assert!(g.num_edges() > 1800, "m={}", g.num_edges());
    }

    #[test]
    fn planted_partition_communities_are_denser_inside() {
        let (g, labels) = planted_partition(200, 4, 0.3, 0.01, 5);
        let mut inside = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > 3 * across, "inside={inside} across={across}");
        // Label vector shape.
        assert_eq!(labels.len(), 200);
        assert_eq!(*labels.iter().max().unwrap(), 3);
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(barabasi_albert(300, 3, 8), barabasi_albert(300, 3, 8));
        assert_eq!(
            watts_strogatz(100, 2, 0.2, 8),
            watts_strogatz(100, 2, 0.2, 8)
        );
        assert_eq!(
            planted_partition(100, 2, 0.2, 0.02, 8).0,
            planted_partition(100, 2, 0.2, 0.02, 8).0
        );
    }
}
