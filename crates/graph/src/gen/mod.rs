//! Synthetic graph generators.
//!
//! The paper evaluates on (a) real-world graphs from SNAP/KONECT/DIMACS/
//! NetworkRepository/WebGraph (Table VIII) and (b) synthetic Kronecker
//! graphs with power-law degree distributions (§VIII-A). With no network
//! access in this environment, [`families`] synthesizes stand-ins matching
//! the published (n, m) and density regime of each named real-world graph,
//! while [`kronecker`] reproduces the synthetic inputs directly.
//!
//! All generators are deterministic in their seed.

mod families;
mod kronecker;
mod models;
mod random;
mod structured;

pub use families::{family_names, instance, FamilyKind, FamilySpec, FAMILIES};
pub use kronecker::{kronecker, kronecker_rmat, RmatParams};
pub use models::{barabasi_albert, planted_partition, watts_strogatz};
pub use random::{chung_lu, erdos_renyi_gnm, erdos_renyi_gnp};
pub use structured::{complete, complete_bipartite, cycle, grid, path, star};
