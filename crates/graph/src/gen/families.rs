//! Synthetic stand-ins for the real-world datasets of Table VIII.
//!
//! The paper evaluates on named SNAP/KONECT/DIMACS/NetworkRepository graphs.
//! Those files are not redistributable inside this repository (and there is
//! no network access), so each named graph is replaced by a synthetic graph
//! with the *same vertex count, edge count, and density regime*:
//!
//! * biological / social / interaction graphs → Chung–Lu power law
//!   (heavy-tailed, like the originals),
//! * economic matrices → uniform Erdős–Rényi at the same density (these
//!   matrices are near-regular with little locality),
//! * chemistry / scientific-computing matrices → Watts–Strogatz small
//!   world (near-regular meshes whose adjacent rows overlap heavily),
//! * DIMACS instances and the brain network → dense G(n, m) (the originals
//!   are near-complete: e.g. `bn-mouse_brain_1` has 96 % of all pairs).
//!
//! The quantities the paper's conclusions depend on — average degree m/n,
//! degree skew, and absolute size — are matched; see DESIGN.md for the
//! substitution argument. Every family is deterministic (fixed seed).

use crate::csr::CsrGraph;
use crate::gen::models::watts_strogatz;
use crate::gen::random::{chung_lu, erdos_renyi_gnm};

/// How a family synthesizes its graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FamilyKind {
    /// Chung–Lu with the given power-law exponent γ.
    PowerLaw(f64),
    /// Uniform G(n, m).
    Uniform,
    /// Watts–Strogatz small world (near-regular mesh with high local
    /// clustering) — the right regime for chemistry/scientific-computing
    /// matrices, whose rows overlap heavily with their neighbors'.
    SmallWorld,
}

/// A named dataset stand-in: the published (n, m) of the original graph
/// plus the synthesis recipe.
#[derive(Clone, Copy, Debug)]
pub struct FamilySpec {
    /// Name of the original graph in Table VIII.
    pub name: &'static str,
    /// Vertex count of the original.
    pub n: usize,
    /// Edge count of the original.
    pub m: usize,
    /// Synthesis recipe.
    pub kind: FamilyKind,
}

use FamilyKind::{PowerLaw, SmallWorld, Uniform};

/// All dataset stand-ins, mirroring the graphs on the x-axis of Figs. 6–7
/// and the accuracy study of Fig. 3.
pub const FAMILIES: &[FamilySpec] = &[
    FamilySpec {
        name: "bio-SC-GT",
        n: 1_700,
        m: 34_000,
        kind: PowerLaw(2.2),
    },
    FamilySpec {
        name: "bio-CE-PG",
        n: 1_900,
        m: 48_000,
        kind: PowerLaw(2.2),
    },
    FamilySpec {
        name: "bio-CE-GN",
        n: 2_200,
        m: 53_700,
        kind: PowerLaw(2.2),
    },
    FamilySpec {
        name: "bio-DM-CX",
        n: 4_000,
        m: 77_000,
        kind: PowerLaw(2.2),
    },
    FamilySpec {
        name: "bio-DR-CX",
        n: 3_300,
        m: 85_000,
        kind: PowerLaw(2.2),
    },
    FamilySpec {
        name: "bio-HS-LC",
        n: 4_200,
        m: 39_000,
        kind: PowerLaw(2.2),
    },
    FamilySpec {
        name: "bio-HS-CX",
        n: 4_400,
        m: 108_800,
        kind: PowerLaw(2.2),
    },
    FamilySpec {
        name: "bio-SC-HT",
        n: 2_000,
        m: 63_000,
        kind: PowerLaw(2.2),
    },
    FamilySpec {
        name: "bio-WormNet-v3",
        n: 16_300,
        m: 762_800,
        kind: PowerLaw(2.1),
    },
    FamilySpec {
        name: "econ-psmigr1",
        n: 3_100,
        m: 543_000,
        kind: Uniform,
    },
    FamilySpec {
        name: "econ-psmigr2",
        n: 3_100,
        m: 540_000,
        kind: Uniform,
    },
    FamilySpec {
        name: "econ-beacxc",
        n: 498,
        m: 50_400,
        kind: Uniform,
    },
    FamilySpec {
        name: "econ-beaflw",
        n: 508,
        m: 53_400,
        kind: Uniform,
    },
    FamilySpec {
        name: "econ-mbeacxc",
        n: 493,
        m: 49_900,
        kind: Uniform,
    },
    FamilySpec {
        name: "econ-orani678",
        n: 2_500,
        m: 90_100,
        kind: Uniform,
    },
    FamilySpec {
        name: "bn-mouse_brain_1",
        n: 213,
        m: 21_800,
        kind: Uniform,
    },
    FamilySpec {
        name: "dimacs-hat1500-3",
        n: 1_500,
        m: 847_000,
        kind: Uniform,
    },
    FamilySpec {
        name: "dimacs-c500-9",
        n: 501,
        m: 112_000,
        kind: Uniform,
    },
    FamilySpec {
        name: "ch-SiO",
        n: 33_400,
        m: 675_500,
        kind: SmallWorld,
    },
    FamilySpec {
        name: "ch-Si10H16",
        n: 17_000,
        m: 446_500,
        kind: SmallWorld,
    },
    FamilySpec {
        name: "int-citAsPh",
        n: 17_900,
        m: 197_000,
        kind: PowerLaw(2.3),
    },
    FamilySpec {
        name: "sc-ThermAB",
        n: 10_600,
        m: 522_400,
        kind: SmallWorld,
    },
    FamilySpec {
        name: "soc-fbMsg",
        n: 1_900,
        m: 13_800,
        kind: PowerLaw(2.3),
    },
];

/// Names of all families, in Table VIII order.
pub fn family_names() -> Vec<&'static str> {
    FAMILIES.iter().map(|f| f.name).collect()
}

fn seed_for(name: &str) -> u64 {
    // Stable per-name seed so each family is reproducible independently.
    let mut s = 0x0DA7_A5E7_u64;
    for b in name.bytes() {
        s = pg_hash::splitmix64_at(s ^ b as u64);
    }
    s
}

/// Builds the stand-in graph for `name`, optionally scaled down.
///
/// `scale = 1` reproduces the published (n, m). Larger scales divide both
/// by `scale` (preserving density m/n), which the test suite uses to keep
/// runtimes small. Returns `None` for unknown names.
pub fn instance(name: &str, scale: usize) -> Option<CsrGraph> {
    let spec = FAMILIES.iter().find(|f| f.name == name)?;
    let scale = scale.max(1);
    let n = (spec.n / scale).max(16);
    let mut m = (spec.m / scale).max(16);
    let max_m = n * (n - 1) / 2;
    m = m.min(max_m);
    let seed = seed_for(name);
    Some(match spec.kind {
        PowerLaw(gamma) => chung_lu(n, m, gamma, seed),
        Uniform => erdos_renyi_gnm(n, m, seed),
        SmallWorld => {
            // Ring lattice with m/n neighbors per side-pair, 5 % rewiring:
            // keeps the published density and gives the strong neighborhood
            // overlap of mesh-like matrices.
            let k_half = (m / n).clamp(1, (n - 1) / 2);
            watts_strogatz(n, k_half, 0.05, seed)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_builds_at_small_scale() {
        for f in FAMILIES {
            let g = instance(f.name, 20).unwrap_or_else(|| panic!("{} missing", f.name));
            assert!(g.num_vertices() >= 16, "{}", f.name);
            assert!(g.num_edges() > 0, "{}", f.name);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(instance("no-such-graph", 1).is_none());
    }

    #[test]
    fn full_scale_matches_published_sizes() {
        // Check one power-law and one uniform family at scale 1.
        let g = instance("bio-CE-PG", 1).unwrap();
        assert_eq!(g.num_vertices(), 1_900);
        let m = g.num_edges() as f64;
        assert!((m - 48_000.0).abs() < 0.15 * 48_000.0, "m={m}");

        let h = instance("econ-beacxc", 1).unwrap();
        assert_eq!(h.num_vertices(), 498);
        assert_eq!(h.num_edges(), 50_400);
    }

    #[test]
    fn power_law_families_are_skewed_uniform_are_not() {
        let pl = instance("bio-CE-PG", 4).unwrap();
        let skew_pl = pl.max_degree() as f64 / pl.avg_degree();
        let un = instance("econ-beacxc", 4).unwrap();
        let skew_un = un.max_degree() as f64 / un.avg_degree();
        assert!(skew_pl > skew_un, "pl={skew_pl} un={skew_un}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(instance("soc-fbMsg", 4), instance("soc-fbMsg", 4));
    }

    #[test]
    fn family_names_unique() {
        let names = family_names();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
