//! Classic random-graph models: Erdős–Rényi and Chung–Lu.

use crate::csr::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// G(n, m): exactly `m` distinct undirected edges chosen uniformly among all
/// `n(n-1)/2` pairs. Panics if `m` exceeds the number of available pairs.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_m,
        "G(n={n}) has at most {max_m} edges, asked for {m}"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x474e_4d31);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u64) as VertexId;
        let v = rng.gen_range(0..n as u64) as VertexId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            edges.push(key);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// G(n, p): every pair independently an edge with probability `p`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x474e_5031);
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Chung–Lu power-law graph: samples edges with endpoint probabilities
/// proportional to weights `w_i ∝ (i + 1)^(−1/(γ−1))` — the standard
/// construction for an expected power-law degree distribution with exponent
/// `gamma` — until `m_target` *distinct* edges exist. Self loops and
/// duplicates are resampled (capped at `50 × m_target` attempts, so extreme
/// hub saturation degrades gracefully to slightly fewer edges).
pub fn chung_lu(n: usize, m_target: usize, gamma: f64, seed: u64) -> CsrGraph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1, got {gamma}");
    assert!(n > 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x434c_5531);
    let alpha = 1.0 / (gamma - 1.0);
    // Cumulative weight table for inverse-transform endpoint sampling.
    let mut cum = Vec::with_capacity(n + 1);
    cum.push(0.0f64);
    let mut acc = 0.0;
    for i in 0..n {
        acc += (i as f64 + 1.0).powf(-alpha);
        cum.push(acc);
    }
    let total = acc;
    let draw = |rng: &mut StdRng| -> VertexId {
        let t = rng.gen::<f64>() * total;
        // cum is strictly increasing; find first index with cum[i+1] > t.
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cum[mid + 1] > t {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo as VertexId
    };
    let mut chosen = std::collections::HashSet::with_capacity(m_target * 2);
    let mut edges = Vec::with_capacity(m_target);
    let mut attempts = 0usize;
    let max_attempts = m_target.saturating_mul(50).max(1000);
    while edges.len() < m_target && attempts < max_attempts {
        attempts += 1;
        let u = draw(&mut rng);
        let v = draw(&mut rng);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            edges.push(key);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 500, 3);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn gnm_complete_limit() {
        let g = erdos_renyi_gnm(10, 45, 1);
        assert_eq!(g.num_edges(), 45);
        assert_eq!(g.max_degree(), 9);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn gnm_rejects_impossible_m() {
        erdos_renyi_gnm(4, 100, 0);
    }

    #[test]
    fn gnp_density_tracks_p() {
        let g = erdos_renyi_gnp(200, 0.1, 9);
        let expect = 0.1 * (200.0 * 199.0 / 2.0);
        let m = g.num_edges() as f64;
        assert!((m - expect).abs() < 0.25 * expect, "m={m}, expect≈{expect}");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(50, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(20, 1.0, 1).num_edges(), 190);
    }

    #[test]
    fn chung_lu_is_skewed() {
        let g = chung_lu(2000, 20_000, 2.2, 11);
        assert!(g.num_edges() > 15_000);
        let skew = g.max_degree() as f64 / g.avg_degree();
        assert!(skew > 3.0, "power-law should be skewed, got {skew}");
    }

    #[test]
    fn chung_lu_hubs_are_low_indices() {
        // Weight decreases with index, so vertex 0 should be a top hub.
        let g = chung_lu(1000, 10_000, 2.1, 4);
        let d0 = g.degree(0);
        let tail_max = (500..1000).map(|v| g.degree(v as VertexId)).max().unwrap();
        assert!(d0 > tail_max, "d0={d0} tail_max={tail_max}");
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(erdos_renyi_gnm(50, 100, 5), erdos_renyi_gnm(50, 100, 5));
        assert_eq!(chung_lu(100, 500, 2.3, 5), chung_lu(100, 500, 2.3, 5));
        assert_eq!(erdos_renyi_gnp(50, 0.2, 5), erdos_renyi_gnp(50, 0.2, 5));
    }
}
