//! # pg-graph — graph substrate
//!
//! The structures under ProbGraph: the CSR representation the paper stores
//! input graphs in (§II-A), the degree-ordering preprocessing used by
//! triangle/clique counting (Listings 1–2), synthetic graph generators
//! (Kronecker power-law graphs as in §VIII-A, plus Erdős–Rényi, Chung–Lu,
//! and structured graphs for testing), synthetic stand-ins for the
//! real-world dataset families of Table VIII, edge-list I/O, and edge
//! sampling for link-prediction evaluation (Listing 5).
//!
//! ```
//! use pg_graph::gen;
//!
//! // A small power-law graph, like the paper's Kronecker inputs.
//! let g = gen::kronecker(10, 8, 42); // 2^10 vertices, avg degree ~8
//! assert!(g.num_vertices() <= 1 << 10);
//! for v in 0..g.num_vertices() as u32 {
//!     // CSR neighborhoods are sorted vertex-ID arrays (paper §II-A).
//!     let nv = g.neighbors(v);
//!     assert!(nv.windows(2).all(|w| w[0] < w[1]));
//! }
//! ```

mod csr;
pub mod gen;
pub mod io;
mod ordering;
mod sampling;
mod stats;
mod traversal;

pub use csr::{CsrGraph, VertexId};
pub use ordering::{degree_rank, orient_by_degree, relabel_by_degree, OrientedDag};
pub use sampling::{split_edges, EdgeSplit};
pub use stats::GraphStats;
pub use traversal::{bfs_distances, connected_components, diameter_lower_bound, induced_subgraph};
