//! Basic traversal utilities: BFS distances and connected components.
//!
//! Substrate pieces used by the link-prediction candidate generation, the
//! clustering evaluation (component counting on induced subgraphs), and
//! the examples. Kept simple and exact — these are not the hot paths the
//! paper optimizes.

use crate::csr::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// BFS distances from `src`; unreachable vertices get `u32::MAX`.
pub fn bfs_distances(g: &CsrGraph, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        let d = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                q.push_back(u);
            }
        }
    }
    dist
}

/// Connected-component labels (0-based, in discovery order) and the number
/// of components.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for s in 0..n as VertexId {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = next;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// The induced subgraph over `verts`, relabeled `0..verts.len()`; returns
/// the subgraph and the old-ID list (index = new ID).
pub fn induced_subgraph(g: &CsrGraph, verts: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
    let mut index = std::collections::HashMap::with_capacity(verts.len());
    for (i, &v) in verts.iter().enumerate() {
        assert!(
            index.insert(v, i as u32).is_none(),
            "duplicate vertex {v} in induced set"
        );
    }
    let mut edges = Vec::new();
    for &v in verts {
        for &u in g.neighbors(v) {
            if v < u {
                if let (Some(&a), Some(&b)) = (index.get(&v), index.get(&u)) {
                    edges.push((a, b));
                }
            }
        }
    }
    (CsrGraph::from_edges(verts.len(), &edges), verts.to_vec())
}

/// Eccentricity-based diameter lower bound via double BFS sweep (exact on
/// trees, a common cheap proxy otherwise).
pub fn diameter_lower_bound(g: &CsrGraph) -> u32 {
    if g.num_vertices() == 0 {
        return 0;
    }
    let d0 = bfs_distances(g, 0);
    let far = d0
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| i as VertexId)
        .unwrap_or(0);
    let d1 = bfs_distances(g, far);
    d1.iter()
        .filter(|&&d| d != u32::MAX)
        .copied()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn bfs_on_path() {
        let g = gen::path(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn components_count() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4)]);
        let (label, n) = connected_components(&g);
        assert_eq!(n, 4); // {0,1,2}, {3,4}, {5}, {6}
        assert_eq!(label[0], label[2]);
        assert_ne!(label[0], label[3]);
        assert_ne!(label[5], label[6]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = gen::complete(6);
        let (sub, old) = induced_subgraph(&g, &[1, 3, 5]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3); // K3
        assert_eq!(old, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_rejects_duplicates() {
        induced_subgraph(&gen::complete(4), &[1, 1]);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter_lower_bound(&gen::path(10)), 9);
        let c = diameter_lower_bound(&gen::cycle(10));
        assert!((4..=5).contains(&c));
        assert_eq!(diameter_lower_bound(&gen::complete(5)), 1);
    }
}
