//! Degree-based vertex ordering and edge orientation.
//!
//! Listings 1 and 2 of the paper preprocess the graph with a vertex order
//! `R` such that `R(v) < R(u)` implies `d_v ≤ d_u`, then orient every edge
//! from the lower-ranked to the higher-ranked endpoint:
//! `N⁺_v = { u ∈ N_v | R(v) < R(u) }`. This bounds `|N⁺_v|` by the graph
//! degeneracy-ish quantity that makes node-iterator triangle counting and
//! 4-clique counting efficient on skewed graphs.

use crate::csr::{CsrGraph, VertexId};
use pg_parallel::{parallel_for, parallel_init};

/// Computes the degree rank `R`: `rank[v]` is the position of `v` in the
/// vertex ordering sorted by `(degree, vertex id)`. Ties broken by ID, so
/// `R` is a total order and `R(v) < R(u) ⇒ d_v ≤ d_u` as the paper requires.
pub fn degree_rank(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| (g.degree(v), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    rank
}

/// The oriented DAG of a degree ordering: per-vertex out-neighborhoods
/// `N⁺_v`, each stored as a sorted vertex-ID array (so the same exact and
/// probabilistic intersection kernels apply to them as to full
/// neighborhoods).
#[derive(Clone, Debug)]
pub struct OrientedDag {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    rank: Vec<u32>,
}

impl OrientedDag {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The oriented out-neighborhood `N⁺_v`, sorted by vertex ID.
    #[inline]
    pub fn neighbors_plus(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree `|N⁺_v|`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The degree rank used to orient the edges.
    #[inline]
    pub fn rank(&self) -> &[u32] {
        &self.rank
    }

    /// Maximum out-degree over all vertices.
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.out_degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }
}

/// Orients `g` by degree rank (Listing 1 line 3 / Listing 2 line 3).
///
/// Every undirected edge appears exactly once in the result, pointing from
/// the lower-ranked to the higher-ranked endpoint.
pub fn orient_by_degree(g: &CsrGraph) -> OrientedDag {
    let n = g.num_vertices();
    let rank = degree_rank(g);
    let rank_ref = &rank;
    let counts = parallel_init(n, |v| {
        g.neighbors(v as VertexId)
            .iter()
            .filter(|&&u| rank_ref[v] < rank_ref[u as usize])
            .count()
    });
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut acc = 0;
    for &c in &counts {
        acc += c;
        offsets.push(acc);
    }
    let mut targets = vec![0 as VertexId; acc];
    {
        struct SendPtr(*mut VertexId);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        let base = SendPtr(targets.as_mut_ptr());
        let base = &base;
        let offsets_ref = &offsets;
        parallel_for(n, |v| {
            let mut w = offsets_ref[v];
            for &u in g.neighbors(v as VertexId) {
                if rank_ref[v] < rank_ref[u as usize] {
                    // SAFETY: the [offsets[v], offsets[v+1]) windows are
                    // disjoint across vertices; each slot written once.
                    unsafe { *base.0.add(w) = u };
                    w += 1;
                }
            }
            debug_assert_eq!(w, offsets_ref[v + 1]);
        });
    }
    OrientedDag {
        offsets,
        targets,
        rank,
    }
}

/// Produces an isomorphic copy of `g` whose vertex IDs are the degree ranks
/// (vertex 0 = lowest degree). Some GMS/GAP kernels prefer this relabeled
/// form; we expose it for the benchmark harness.
pub fn relabel_by_degree(g: &CsrGraph) -> (CsrGraph, Vec<u32>) {
    let rank = degree_rank(g);
    let edges: Vec<(VertexId, VertexId)> = g
        .edges()
        .map(|(u, v)| (rank[u as usize], rank[v as usize]))
        .collect();
    (CsrGraph::from_edges(g.num_vertices(), &edges), rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn rank_respects_degree() {
        let g = path5();
        let rank = degree_rank(&g);
        for v in 0..5u32 {
            for u in 0..5u32 {
                if rank[v as usize] < rank[u as usize] {
                    assert!(g.degree(v) <= g.degree(u));
                }
            }
        }
        // Total order: all ranks distinct.
        let mut sorted = rank.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn orientation_covers_each_edge_once() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let dag = orient_by_degree(&g);
        let total: usize = (0..6).map(|v| dag.out_degree(v as VertexId)).sum();
        assert_eq!(total, g.num_edges());
        for v in 0..6u32 {
            let np = dag.neighbors_plus(v);
            assert!(np.windows(2).all(|w| w[0] < w[1]), "N+ must stay sorted");
            for &u in np {
                assert!(dag.rank()[v as usize] < dag.rank()[u as usize]);
                assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn star_orients_towards_center() {
        // Star: center 0 has max degree, so every leaf points at 0.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let dag = orient_by_degree(&g);
        assert_eq!(dag.out_degree(0), 0);
        for leaf in 1..5u32 {
            assert_eq!(dag.neighbors_plus(leaf), &[0]);
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let (h, rank) = relabel_by_degree(&g);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(h.has_edge(rank[u as usize], rank[v as usize]));
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let dag = orient_by_degree(&g);
        assert_eq!(dag.num_vertices(), 0);
        assert_eq!(dag.max_out_degree(), 0);
    }
}
