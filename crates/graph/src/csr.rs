//! Compressed Sparse Row (CSR) graph representation.
//!
//! Exactly the layout the paper describes in §II-A: all neighborhoods form
//! one contiguous array of vertex IDs (2m words for an undirected graph),
//! plus an offsets array with n+1 entries. Each neighborhood is stored as a
//! **sorted** array, which is what makes the exact merge/galloping
//! intersections of Fig. 1 possible.

use pg_parallel::{parallel_for, sum_u64};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Vertex identifier. The paper models `V = {1, …, n}`; we use `0..n`.
pub type VertexId = u32;

/// An undirected simple graph in CSR form.
///
/// Invariants (checked by the builder, relied upon everywhere):
/// * every neighborhood is sorted strictly ascending (no duplicates),
/// * no self loops,
/// * symmetry: `u ∈ N(v)` ⇔ `v ∈ N(u)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a CSR graph from an arbitrary list of undirected edges.
    ///
    /// Accepts duplicates, self loops, and either edge orientation; the
    /// result is a clean simple undirected graph over vertices
    /// `0..num_vertices`. Edges that mention vertices `>= num_vertices`
    /// panic. Construction is parallel: degree counting, scatter, per-vertex
    /// sort, and dedup all run over `pg-parallel`.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "vertex ids are u32; got n={num_vertices}"
        );
        // 1. Count tentative degrees (both directions, self loops dropped).
        let degrees: Vec<AtomicUsize> = (0..num_vertices).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(edges.len(), |i| {
            let (u, v) = edges[i];
            assert!(
                (u as usize) < num_vertices && (v as usize) < num_vertices,
                "edge ({u},{v}) out of range for n={num_vertices}"
            );
            if u != v {
                degrees[u as usize].fetch_add(1, Ordering::Relaxed);
                degrees[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
        // 2. Exclusive prefix sum -> provisional offsets.
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d.load(Ordering::Relaxed);
            offsets.push(acc);
        }
        // 3. Scatter neighbor IDs with per-vertex atomic cursors.
        let cursors: Vec<AtomicUsize> = offsets[..num_vertices]
            .iter()
            .map(|&o| AtomicUsize::new(o))
            .collect();
        let slots: Vec<AtomicU32> = (0..acc).map(|_| AtomicU32::new(0)).collect();
        parallel_for(edges.len(), |i| {
            let (u, v) = edges[i];
            if u != v {
                let su = cursors[u as usize].fetch_add(1, Ordering::Relaxed);
                slots[su].store(v, Ordering::Relaxed);
                let sv = cursors[v as usize].fetch_add(1, Ordering::Relaxed);
                slots[sv].store(u, Ordering::Relaxed);
            }
        });
        let mut neighbors: Vec<VertexId> = slots.into_iter().map(AtomicU32::into_inner).collect();
        // 4. Sort + dedup each neighborhood in parallel, compact afterwards.
        let new_len: Vec<AtomicUsize> = (0..num_vertices).map(|_| AtomicUsize::new(0)).collect();
        {
            // Split the flat array into per-vertex windows; windows are
            // disjoint so parallel mutation is safe. We use raw parts to
            // hand each worker its own window.
            struct SendPtr(*mut VertexId);
            unsafe impl Send for SendPtr {}
            unsafe impl Sync for SendPtr {}
            let base = SendPtr(neighbors.as_mut_ptr());
            let base = &base;
            let offsets_ref = &offsets;
            parallel_for(num_vertices, |v| {
                let (s, e) = (offsets_ref[v], offsets_ref[v + 1]);
                // SAFETY: [s, e) windows are pairwise disjoint across v.
                let window = unsafe { std::slice::from_raw_parts_mut(base.0.add(s), e - s) };
                window.sort_unstable();
                let mut w = 0usize;
                for r in 0..window.len() {
                    if r == 0 || window[r] != window[r - 1] {
                        window[w] = window[r];
                        w += 1;
                    }
                }
                new_len[v].store(w, Ordering::Relaxed);
            });
        }
        // 5. Compact to final CSR (sequential; bounded by one memcpy pass).
        let mut final_offsets = Vec::with_capacity(num_vertices + 1);
        final_offsets.push(0usize);
        let mut write = 0usize;
        for v in 0..num_vertices {
            let (s, len) = (offsets[v], new_len[v].load(Ordering::Relaxed));
            neighbors.copy_within(s..s + len, write);
            write += len;
            final_offsets.push(write);
        }
        neighbors.truncate(write);
        neighbors.shrink_to_fit();
        CsrGraph {
            offsets: final_offsets,
            neighbors,
        }
    }

    /// Builds a graph directly from already-clean sorted adjacency arrays.
    /// Panics if any invariant (sortedness, symmetry, no self loops) fails.
    pub fn from_adjacency(adj: Vec<Vec<VertexId>>) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        for (v, nv) in adj.iter().enumerate() {
            assert!(
                nv.windows(2).all(|w| w[0] < w[1]),
                "neighborhood of {v} not strictly sorted"
            );
            assert!(!nv.contains(&(v as VertexId)), "self loop at {v}");
            neighbors.extend_from_slice(nv);
            offsets.push(neighbors.len());
        }
        let g = CsrGraph { offsets, neighbors };
        for v in 0..n as VertexId {
            for &u in g.neighbors(v) {
                assert!(
                    g.has_edge(u, v),
                    "asymmetric adjacency: {v}->{u} present, {u}->{v} missing"
                );
            }
        }
        g
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree `d_v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The sorted neighborhood `N_v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Membership query `u ∈ N_v` by binary search.
    #[inline]
    pub fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.neighbors(v).binary_search(&u).is_ok()
    }

    /// Maximum degree `d` (paper notation: Δ).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `d̄ = 2m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Σ_v d(v)² — appears in the MinHash TC bound of Theorem VII.1.
    pub fn sum_degree_squares(&self) -> u64 {
        sum_u64(self.num_vertices(), |v| {
            let d = self.degree(v as VertexId) as u64;
            d * d
        })
    }

    /// Σ_v d(v)³ — appears in the refined MinHash TC bound of Theorem VII.1.
    pub fn sum_degree_cubes(&self) -> u64 {
        sum_u64(self.num_vertices(), |v| {
            let d = self.degree(v as VertexId) as u64;
            d * d * d
        })
    }

    /// The *forward* neighbors of `v`: the suffix of [`CsrGraph::neighbors`]
    /// with IDs strictly greater than `v`. Because [`CsrGraph::edge_list`]
    /// emits every edge once as `(u, v)` with `u < v`, sources ascending,
    /// the forward run of `u` is exactly `u`'s contiguous block of the
    /// edge list — which is what lets edge kernels batch per-source rows
    /// through `estimate_row` instead of looping edge-by-edge.
    #[inline]
    pub fn forward_neighbors(&self, v: VertexId) -> &[VertexId] {
        let nv = self.neighbors(v);
        &nv[nv.partition_point(|&w| w <= v)..]
    }

    /// Iterates every undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .copied()
                .filter(move |&u| v < u)
                .map(move |u| (v, u))
        })
    }

    /// Collects [`CsrGraph::edges`] into a vector (handy for samplers).
    pub fn edge_list(&self) -> Vec<(VertexId, VertexId)> {
        self.edges().collect()
    }

    /// Bytes occupied by the CSR arrays — the baseline against which the
    /// paper's storage budget `s` (§V-A) is measured.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.avg_degree(), 2.0);
    }

    #[test]
    fn ignores_self_loops_and_duplicates() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (3, 2), (2, 3), (3, 3)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
        let empty = CsrGraph::from_edges(0, &[]);
        assert_eq!(empty.num_vertices(), 0);
        assert_eq!(empty.num_edges(), 0);
        assert_eq!(empty.avg_degree(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle();
        for v in 0..3 {
            for u in 0..3 {
                assert_eq!(g.has_edge(v, u), g.has_edge(u, v));
                assert_eq!(g.has_edge(v, u), v != u);
            }
        }
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let es = g.edge_list();
        assert_eq!(es.len(), g.num_edges());
        assert!(es.iter().all(|&(u, v)| u < v));
        let set: std::collections::HashSet<_> = es.iter().collect();
        assert_eq!(set.len(), es.len());
    }

    #[test]
    fn degree_sums() {
        let g = triangle();
        assert_eq!(g.sum_degree_squares(), 3 * 4);
        assert_eq!(g.sum_degree_cubes(), 3 * 8);
    }

    #[test]
    fn from_adjacency_roundtrip() {
        let g = triangle();
        let adj: Vec<Vec<VertexId>> = (0..3).map(|v| g.neighbors(v).to_vec()).collect();
        assert_eq!(CsrGraph::from_adjacency(adj), g);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn from_adjacency_rejects_asymmetry() {
        CsrGraph::from_adjacency(vec![vec![1], vec![]]);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Build a medium random multigraph twice under different thread
        // counts; CSR output must be identical.
        let mut edges = Vec::new();
        let mut s = 12345u64;
        for _ in 0..20_000 {
            let a = pg_hash::splitmix64(&mut s);
            edges.push(((a % 500) as u32, ((a >> 32) % 500) as u32));
        }
        let g1 = pg_parallel::with_threads(1, || CsrGraph::from_edges(500, &edges));
        let g8 = pg_parallel::with_threads(8, || CsrGraph::from_edges(500, &edges));
        assert_eq!(g1, g8);
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle();
        assert!(g.memory_bytes() >= 6 * 4);
    }
}
