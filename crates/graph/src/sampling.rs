//! Edge sampling for link-prediction evaluation (Listing 5 of the paper).
//!
//! The evaluation protocol removes a random subset `E_rndm ⊆ E` from the
//! graph, runs a link-prediction scorer on the sparsified graph
//! `E_sparse = E \ E_rndm`, and measures how many of the top-scored
//! non-edges are actually in `E_rndm`.

use crate::csr::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The result of [`split_edges`]: a sparsified graph plus the held-out edges.
#[derive(Clone, Debug)]
pub struct EdgeSplit {
    /// `E_sparse = E \ E_rndm` as a graph over the same vertex set.
    pub sparse: CsrGraph,
    /// The removed edges `E_rndm`, each as `(u, v)` with `u < v`.
    pub removed: Vec<(VertexId, VertexId)>,
}

/// Removes a uniformly random fraction `frac ∈ [0, 1)` of the edges.
///
/// The sparse graph keeps the full vertex set, so vertex IDs remain valid.
/// Deterministic in `seed`.
pub fn split_edges(g: &CsrGraph, frac: f64, seed: u64) -> EdgeSplit {
    assert!(
        (0.0..1.0).contains(&frac),
        "removal fraction {frac} outside [0,1)"
    );
    let mut edges = g.edge_list();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5911_751D_u64);
    edges.shuffle(&mut rng);
    let n_remove = (edges.len() as f64 * frac).round() as usize;
    let removed: Vec<_> = edges[..n_remove].to_vec();
    let kept = &edges[n_remove..];
    EdgeSplit {
        sparse: CsrGraph::from_edges(g.num_vertices(), kept),
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn split_partitions_edge_set() {
        let g = gen::kronecker(8, 8, 5);
        let split = split_edges(&g, 0.2, 9);
        assert_eq!(
            split.sparse.num_edges() + split.removed.len(),
            g.num_edges()
        );
        // Removed edges are real edges of g and absent from sparse.
        for &(u, v) in &split.removed {
            assert!(g.has_edge(u, v));
            assert!(!split.sparse.has_edge(u, v));
        }
        // Kept edges are still present.
        for (u, v) in split.sparse.edges() {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn zero_fraction_removes_nothing() {
        let g = gen::complete(8);
        let split = split_edges(&g, 0.0, 1);
        assert!(split.removed.is_empty());
        assert_eq!(split.sparse, g);
    }

    #[test]
    fn vertex_set_preserved() {
        let g = gen::star(50);
        let split = split_edges(&g, 0.5, 3);
        assert_eq!(split.sparse.num_vertices(), 50);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gen::kronecker(7, 4, 2);
        let a = split_edges(&g, 0.3, 11);
        let b = split_edges(&g, 0.3, 11);
        assert_eq!(a.removed, b.removed);
        assert_eq!(a.sparse, b.sparse);
        let c = split_edges(&g, 0.3, 12);
        assert_ne!(a.removed, c.removed);
    }

    #[test]
    fn fraction_is_respected() {
        let g = gen::erdos_renyi_gnm(100, 1000, 4);
        let split = split_edges(&g, 0.25, 8);
        assert_eq!(split.removed.len(), 250);
    }
}
